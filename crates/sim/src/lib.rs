//! System-level simulator for the PIM-MMU evaluation.
//!
//! Combines the substrate crates into the evaluated machine (Table I):
//! an 8-core CPU cluster ([`pim_cpu`]), per-channel DDR4 memory
//! controllers for the DRAM and PIM DIMMs ([`pim_dram`]), the Data Copy
//! Engine ([`pim_mmu`]) and the energy model ([`pim_energy`]) — advanced
//! on two clock domains (3.2 GHz core/engine clock, 1.2 GHz DDR4-2400
//! memory clock) over a common integer tick of 1/96 ns.
//!
//! Components plug into the [`engine`] layer: each implements
//! [`Tickable`] (tick + drain-outputs + stats snapshot, adapters in
//! [`components`]) and [`System`] composes them over a [`ClockDomains`]
//! scheduler. Independent experiment points fan out across host cores
//! through the [`batch`] harness.
//!
//! The four design points of the paper's ablation (Fig. 15) are selected
//! with [`DesignPoint`]:
//!
//! | design | copy path | DRAM mapping | PIM scheduling |
//! |---|---|---|---|
//! | `Baseline` | multi-threaded AVX software | locality (homogeneous) | OS threads |
//! | `BaseD` | DCE, coarse | locality (homogeneous) | descriptor order |
//! | `BaseDH` | DCE, coarse | HetMap (MLP-centric DRAM) | descriptor order |
//! | `BaseDHP` | DCE + PIM-MS | HetMap | Algorithm 1 |

pub mod batch;
pub mod clock;
pub mod components;
pub mod config;
pub mod engine;
pub mod result;
#[cfg(feature = "sanitize")]
pub mod sanitize;
pub mod system;
pub mod timeq;
pub mod transfer;

pub use batch::{default_threads, run_batch, run_batch_parallel, BatchPoint, Experiment};
pub use clock::{ns_to_ticks, ticks_to_ns, Clock, TICKS_PER_NS};
pub use config::TimingMode;
pub use config::{DesignPoint, SystemConfig, ThreadAssignment};
pub use engine::{ClockDomains, DomainId, Fired, Output, StatsSnapshot, Tickable, TimingStats};
pub use result::{PowerSample, TransferResult};
#[cfg(feature = "sanitize")]
pub use sanitize::{SanitizeKind, SanitizeViolation};
pub use system::{DomainProfile, System};
pub use transfer::{run_memcpy, run_transfer, ContenderSpec, TransferSpec, HOST_BUFFER_BASE};
