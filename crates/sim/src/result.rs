//! Experiment result records.

use pim_energy::EnergyBreakdown;
use serde::{Deserialize, Serialize};

/// One sampling window of system activity (Fig. 4's time series).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PowerSample {
    /// Window end, ns since simulation start.
    pub t_ns: f64,
    /// CPU cores active during the window.
    pub active_cores: u32,
    /// Average system power over the window, W.
    pub watts: f64,
}

/// Result of one simulated DRAM↔PIM (or DRAM↔DRAM) transfer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransferResult {
    /// Design-point label ("Base", "Base+D+H+P", ...).
    pub design: String,
    /// Payload bytes moved.
    pub bytes: u64,
    /// End-to-end latency in nanoseconds (including driver/interrupt
    /// overheads for DCE designs).
    pub elapsed_ns: f64,
    /// Energy consumed over the transfer.
    pub energy: EnergyBreakdown,
    /// Power/activity time series.
    pub power_samples: Vec<PowerSample>,
    /// Per-PIM-channel written bytes per sampling window
    /// (`pim_channel_windows[ch][w]`, Fig. 6's stacked series).
    pub pim_channel_windows: Vec<Vec<u64>>,
    /// Per-DRAM-channel read+written bytes per sampling window.
    pub dram_channel_windows: Vec<Vec<u64>>,
    /// PIM-side data-bus utilization in `[0, 1]`.
    pub pim_bus_utilization: f64,
    /// DRAM-side data-bus utilization in `[0, 1]`.
    pub dram_bus_utilization: f64,
}

impl TransferResult {
    /// Achieved throughput in (decimal) GB/s.
    pub fn throughput_gbps(&self) -> f64 {
        if self.elapsed_ns <= 0.0 {
            return 0.0;
        }
        self.bytes as f64 / self.elapsed_ns
    }

    /// Energy efficiency in bytes per microjoule.
    pub fn bytes_per_uj(&self) -> f64 {
        let uj = self.energy.total_mj() * 1e3;
        if uj <= 0.0 {
            return 0.0;
        }
        self.bytes as f64 / uj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math() {
        let r = TransferResult {
            design: "Base".into(),
            bytes: 64 << 20,
            elapsed_ns: 1e6, // 1 ms
            energy: EnergyBreakdown::default(),
            power_samples: vec![],
            pim_channel_windows: vec![],
            dram_channel_windows: vec![],
            pim_bus_utilization: 0.0,
            dram_bus_utilization: 0.0,
        };
        // 64 MiB in 1 ms = 67.1 GB/s.
        assert!((r.throughput_gbps() - 67.108864).abs() < 1e-6);
        assert_eq!(r.bytes_per_uj(), 0.0);
    }
}
