//! Experiment result records.

use pim_energy::EnergyBreakdown;
use serde::{Deserialize, Serialize};

/// One sampling window of system activity (Fig. 4's time series).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PowerSample {
    /// Window end, ns since simulation start.
    pub t_ns: f64,
    /// CPU cores active during the window.
    pub active_cores: u32,
    /// Average system power over the window, W.
    pub watts: f64,
}

/// Result of one simulated DRAM↔PIM (or DRAM↔DRAM) transfer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransferResult {
    /// Design-point label ("Base", "Base+D+H+P", ...).
    pub design: String,
    /// Payload bytes moved.
    pub bytes: u64,
    /// End-to-end latency in nanoseconds (including driver/interrupt
    /// overheads for DCE designs).
    pub elapsed_ns: f64,
    /// Energy consumed over the transfer.
    pub energy: EnergyBreakdown,
    /// Power/activity time series.
    pub power_samples: Vec<PowerSample>,
    /// Per-PIM-channel written bytes per sampling window
    /// (`pim_channel_windows[ch][w]`, Fig. 6's stacked series).
    pub pim_channel_windows: Vec<Vec<u64>>,
    /// Per-DRAM-channel read+written bytes per sampling window.
    pub dram_channel_windows: Vec<Vec<u64>>,
    /// PIM-side data-bus utilization in `[0, 1]`.
    pub pim_bus_utilization: f64,
    /// DRAM-side data-bus utilization in `[0, 1]`.
    pub dram_bus_utilization: f64,
}

impl TransferResult {
    /// Achieved throughput in (decimal) GB/s.
    pub fn throughput_gbps(&self) -> f64 {
        if self.elapsed_ns <= 0.0 {
            return 0.0;
        }
        self.bytes as f64 / self.elapsed_ns
    }

    /// Energy efficiency in bytes per microjoule.
    pub fn bytes_per_uj(&self) -> f64 {
        let uj = self.energy.total_mj() * 1e3;
        if uj <= 0.0 {
            return 0.0;
        }
        self.bytes as f64 / uj
    }

    /// Wall-clock speedup of `self` over `baseline` (latency ratio).
    ///
    /// Guarded against zero-elapsed results (e.g. a run cut off by the
    /// `max_ns` cap before any progress): any non-positive elapsed time
    /// on either side yields `0.0` rather than `inf`/`NaN`, so sweep
    /// tables and geomeans stay finite.
    pub fn speedup_over(&self, baseline: &TransferResult) -> f64 {
        if self.elapsed_ns <= 0.0 || baseline.elapsed_ns <= 0.0 {
            return 0.0;
        }
        baseline.elapsed_ns / self.elapsed_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math() {
        let r = TransferResult {
            design: "Base".into(),
            bytes: 64 << 20,
            elapsed_ns: 1e6, // 1 ms
            energy: EnergyBreakdown::default(),
            power_samples: vec![],
            pim_channel_windows: vec![],
            dram_channel_windows: vec![],
            pim_bus_utilization: 0.0,
            dram_bus_utilization: 0.0,
        };
        // 64 MiB in 1 ms = 67.1 GB/s.
        assert!((r.throughput_gbps() - 67.108864).abs() < 1e-6);
        assert_eq!(r.bytes_per_uj(), 0.0);
    }

    fn result_with_elapsed(elapsed_ns: f64) -> TransferResult {
        TransferResult {
            design: "Base".into(),
            bytes: 1 << 20,
            elapsed_ns,
            energy: EnergyBreakdown::default(),
            power_samples: vec![],
            pim_channel_windows: vec![],
            dram_channel_windows: vec![],
            pim_bus_utilization: 0.0,
            dram_bus_utilization: 0.0,
        }
    }

    #[test]
    fn zero_elapsed_runs_are_guarded() {
        // A run cut off by the max_ns cap before any progress must not
        // poison derived metrics with inf/NaN.
        let dead = result_with_elapsed(0.0);
        let live = result_with_elapsed(1e6);
        assert_eq!(dead.throughput_gbps(), 0.0);
        assert_eq!(dead.speedup_over(&live), 0.0);
        assert_eq!(live.speedup_over(&dead), 0.0);
        assert_eq!(result_with_elapsed(-1.0).throughput_gbps(), 0.0);
    }

    #[test]
    fn speedup_is_latency_ratio() {
        let fast = result_with_elapsed(1e6);
        let slow = result_with_elapsed(4e6);
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-12);
        assert!((slow.speedup_over(&fast) - 0.25).abs() < 1e-12);
    }
}
