//! The lost-wakeup / stale-horizon sanitizer (`--features sanitize`).
//!
//! The event-driven core's whole bargain is that a parked or deferred
//! domain *provably* has nothing to do before its armed wake edge. That
//! proof lives in each component's [`Tickable::next_event`] and in the
//! scheduler's re-arm discipline — and a bug in either produces the
//! worst kind of failure: not a crash, but a simulation that silently
//! diverges from the cycle-stepped reference because a component slept
//! through work (a *lost wakeup*) or was re-aimed past its true horizon
//! (a *stale horizon*).
//!
//! Under the `sanitize` feature, [`System::step`](crate::System::step)
//! shadow-checks the scheduler after **every** event:
//!
//! 1. **monotonic events** — the agenda never moves time backwards;
//! 2. **no domain armed in the past** — every armed domain's pending
//!    delivery is strictly after the step that just completed;
//! 3. **skip reconciliation** — no component's clock, and no domain's
//!    delivered-edge count, is ever *ahead* of the grid at `now`;
//! 4. **lost-wakeup / stale-horizon** — every internal component's
//!    horizon is *re-derived* from scratch via `next_event`; a domain
//!    whose component reports work at edge `e` must be armed, at an
//!    edge no later than `e` (a parked domain with work is a lost
//!    wakeup; an armed one aimed past `e` is a stale horizon);
//! 5. **agenda head** — the heap's next edge equals the minimum armed
//!    `next()` over all domains (stale-entry pruning never let the
//!    head rot).
//!
//! The checks are pure reads: enabling the feature changes *no*
//! simulated state, so goldens stay bit-identical with the feature on
//! or off. By default a violation panics (checks are meant to run
//! under CI's test matrix); record mode
//! ([`System::sanitize_record_only`](crate::System::sanitize_record_only))
//! collects [`SanitizeViolation`]s instead, which is what the
//! fault-injection tests use.
//!
//! [`Tickable::next_event`]: crate::engine::Tickable::next_event

/// Which invariant a violation breaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SanitizeKind {
    /// The agenda delivered an event at or before the previous event's
    /// tick (check 1).
    NonMonotonicEvent,
    /// An armed domain's pending delivery is at or before the step that
    /// just completed (check 2).
    ArmedInPast,
    /// A component's clock, or a domain's delivered-edge count, is
    /// ahead of its grid at `now` (check 3).
    ClockAhead,
    /// A component reports pending work but its domain is parked: the
    /// work would sleep forever absent an external wake (check 4).
    LostWakeup,
    /// A component's domain is armed *later* than the component's own
    /// re-derived horizon: the wake would arrive after the work was due
    /// (check 4).
    StaleHorizon,
    /// The agenda head disagrees with the minimum armed `next()` over
    /// all domains (check 5).
    AgendaMismatch,
}

/// One breached invariant, stamped with where and when.
#[derive(Debug, Clone)]
pub struct SanitizeViolation {
    /// Which invariant.
    pub kind: SanitizeKind,
    /// Label of the clock domain involved (`"-"` for whole-agenda
    /// checks).
    pub domain: &'static str,
    /// Tick of the step at which the check ran.
    pub t: u64,
    /// Specifics: the armed edge, the re-derived horizon, the offending
    /// counts.
    pub detail: String,
}

impl std::fmt::Display for SanitizeViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sanitize: {:?} on domain `{}` at t={}: {}",
            self.kind, self.domain, self.t, self.detail
        )
    }
}

/// Per-`System` sanitizer state: the previous event tick plus the
/// violation log (empty in panic mode, which aborts on the first
/// finding instead).
#[derive(Debug, Default)]
pub(crate) struct Sanitizer {
    record_only: bool,
    last_event: Option<u64>,
    violations: Vec<SanitizeViolation>,
}

impl Sanitizer {
    /// Switch from panic-on-violation to recording.
    pub(crate) fn record_only(&mut self) {
        self.record_only = true;
    }

    /// Violations recorded so far (record mode only).
    pub(crate) fn violations(&self) -> &[SanitizeViolation] {
        &self.violations
    }

    /// Note a step's event tick, checking monotonicity (check 1).
    pub(crate) fn observe_event(&mut self, now: u64) {
        if let Some(prev) = self.last_event {
            if now <= prev {
                self.report(SanitizeViolation {
                    kind: SanitizeKind::NonMonotonicEvent,
                    domain: "-",
                    t: now,
                    detail: format!("event at t={now} after event at t={prev}"),
                });
            }
        }
        self.last_event = Some(now);
    }

    /// File (or panic on) one violation.
    pub(crate) fn report(&mut self, v: SanitizeViolation) {
        if self.record_only {
            self.violations.push(v);
        } else {
            panic!("{v}");
        }
    }
}
