//! The assembled system: CPU cluster + DCE + DRAM/PIM memory controllers
//! composed over the [`crate::engine`] component engine.
//!
//! `System` owns no per-component clock bookkeeping: every clock lives in
//! a [`ClockDomains`] scheduler, every component is driven through the
//! [`Tickable`] surface, and `step` is pure composition — advance to the
//! earliest edge, tick whichever domains fired, wire outputs together.

use crate::clock::{ns_ticks_floor, ticks_to_ns};
use crate::config::{SystemConfig, TimingMode};
use crate::engine::{ClockDomains, DomainId, Fired, Output, StatsSnapshot, Tickable, TimingStats};
use crate::result::PowerSample;
use pim_cpu::{CpuCluster, Thread};
use pim_dram::MemController;
use pim_energy::ActivityCounts;
use pim_mapping::{HetMap, MemSpace, PimAddrSpace};
use pim_mmu::dce::DCE_SOURCE;
use pim_mmu::Dce;

/// [`DomainId`] handles for the registered clock domains (the clocks
/// themselves live in [`ClockDomains`]).
#[derive(Debug, Clone)]
struct Domains {
    cpu: DomainId,
    dram: DomainId,
    pim: DomainId,
    /// One domain per instantiated engine (empty iff the design has no
    /// DCE); engine `s` ticks at `dce[s]`'s edges.
    dce: Vec<DomainId>,
    sample: DomainId,
}

/// Where in the current step a request drain sits relative to each
/// controller group's tick phase (see
/// [`drain_requests`](System::drain_requests)).
#[derive(Debug, Clone, Copy)]
struct PhasePos {
    /// The DRAM group's phase already ran this step.
    dram: bool,
    /// The PIM group's phase already ran this step.
    pim: bool,
}

impl PhasePos {
    /// A drain before either controller group's phase (cpu/engine
    /// phases).
    const PRE: PhasePos = PhasePos {
        dram: false,
        pim: false,
    };
}

/// The evaluated machine.
pub struct System {
    /// Configuration in force.
    pub cfg: SystemConfig,
    mapper: HetMap,
    cluster: CpuCluster,
    /// The DCE engine array: `cfg.dce_count` shards when the design uses
    /// a DCE, each with its own clock domain and shard-tagged source id.
    engines: Vec<Dce>,
    dram: Vec<MemController>,
    pim: Vec<MemController>,
    t: u64,
    /// Whether `step` has run (guards late domain registration, which
    /// `t` alone cannot: the first step fires the t = 0 edges).
    stepped: bool,
    clocks: ClockDomains,
    domains: Domains,
    snap: Snapshot,
    power_samples: Vec<PowerSample>,
    /// Whether the wall-time self-profile is armed (off by default; the
    /// per-domain fire/skip counters in [`ClockDomains`] are always on).
    profile: bool,
    /// Host wall nanoseconds per domain slot (empty until profiling is
    /// enabled; grown on demand so late credit never panics).
    wall_ns: Vec<u64>,
    /// Shadow checker for scheduler invariants (pure reads: simulated
    /// state is bit-identical with the feature on or off).
    #[cfg(feature = "sanitize")]
    sanitizer: crate::sanitize::Sanitizer,
}

/// Timestamped counter snapshot for windowed power computation.
#[derive(Debug, Clone, Copy, Default)]
struct Snapshot {
    t_ns: f64,
    counters: StatsSnapshot,
}

/// One clock domain's slice of the simulator's own cost: how many edges
/// its component actually ticked, how many idle-skip elided, and (when
/// [`System::enable_self_profile`] is on) the host wall time spent in
/// its tick phase. `fires`/`skipped` are deterministic simulation
/// outputs; `wall_ns` is host-machine measurement and must never feed
/// back into simulated state or byte-compared artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainProfile {
    /// The label the domain was registered under.
    pub label: &'static str,
    /// Deliveries actually taken (component ticks run).
    pub fires: u64,
    /// Edges elided by idle-skip (folded into later fires).
    pub skipped: u64,
    /// Host wall time spent ticking this domain, in nanoseconds; 0
    /// unless self-profiling is enabled (and for composer-owned domains
    /// the composer never credited).
    pub wall_ns: u64,
}

impl System {
    /// Build a system running `threads` on the CPU; a DCE is instantiated
    /// iff the design point uses one.
    pub fn new(cfg: SystemConfig, threads: Vec<Thread>) -> Self {
        let mapper = cfg.mapper();
        let cluster = CpuCluster::new(cfg.cpu, mapper.clone(), threads);
        let engines: Vec<Dce> = if cfg.design.uses_dce() {
            let space = PimAddrSpace::new(mapper.pim_base(), cfg.pim_org);
            (0..cfg.dce_count.max(1))
                .map(|s| {
                    let shard = u32::try_from(s).expect("shard count fits u32");
                    Dce::with_shard(cfg.dce, mapper.clone(), space, shard)
                })
                .collect()
        } else {
            Vec::new()
        };
        let ctrl_cfg = cfg.controller_config();
        let dram = (0..cfg.dram_org.channels)
            .map(|_| MemController::with_config(cfg.dram_org, cfg.dram_timing, ctrl_cfg))
            .collect();
        let pim = (0..cfg.pim_org.channels)
            .map(|_| MemController::with_config(cfg.pim_org, cfg.pim_timing, ctrl_cfg))
            .collect();

        let mut clocks = ClockDomains::new();
        let domains = Domains {
            cpu: clocks.add_period_ps("cpu", cfg.cpu.period_ps()),
            dram: clocks.add_period_ps("dram", cfg.dram_timing.t_ck_ps),
            pim: clocks.add_period_ps("pim", cfg.pim_timing.t_ck_ps),
            dce: engines
                .iter()
                .map(|_| clocks.add_period_ps("dce", cfg.dce.period_ps()))
                .collect(),
            sample: clocks.add_period_ticks("sample", ns_ticks_floor(cfg.sample_ns)),
        };
        System {
            mapper,
            cluster,
            engines,
            dram,
            pim,
            t: 0,
            stepped: false,
            clocks,
            domains,
            snap: Snapshot::default(),
            power_samples: Vec::new(),
            profile: false,
            wall_ns: Vec::new(),
            #[cfg(feature = "sanitize")]
            sanitizer: crate::sanitize::Sanitizer::default(),
            cfg,
        }
    }

    /// The memory mapping installed by this design.
    pub fn mapper(&self) -> &HetMap {
        &self.mapper
    }

    /// The CPU cluster.
    pub fn cluster(&self) -> &CpuCluster {
        &self.cluster
    }

    /// The first DCE engine, when present (the single-engine view; the
    /// one-shot harness and every pre-sharding caller use this).
    pub fn dce(&self) -> Option<&Dce> {
        self.engines.first()
    }

    /// Mutable access to the first DCE engine (for job submission).
    pub fn dce_mut(&mut self) -> Option<&mut Dce> {
        self.engines.first_mut()
    }

    /// The full engine array (empty iff the design has no DCE); engine
    /// `s` is shard `s`.
    pub fn engines(&self) -> &[Dce] {
        &self.engines
    }

    /// Mutable access to the whole engine array (a sharded runtime
    /// dispatches across every shard at once).
    pub fn engines_mut(&mut self) -> &mut [Dce] {
        &mut self.engines
    }

    /// Whether every engine is [idle](Dce::idle) — nothing active,
    /// pending, or awaiting a completion drain anywhere in the array.
    pub fn engines_idle(&self) -> bool {
        self.engines.iter().all(Dce::idle)
    }

    /// Mutable access to one shard's engine.
    pub fn engine_mut(&mut self, shard: usize) -> Option<&mut Dce> {
        self.engines.get_mut(shard)
    }

    /// DRAM-side controllers.
    pub fn dram_controllers(&self) -> &[MemController] {
        &self.dram
    }

    /// PIM-side controllers.
    pub fn pim_controllers(&self) -> &[MemController] {
        &self.pim
    }

    /// The clock-domain scheduler (labels, edge inspection).
    pub fn clock_domains(&self) -> &ClockDomains {
        &self.clocks
    }

    /// Register an additional clock domain for an external [`Tickable`]
    /// participant (e.g. a host-side transfer-queue runtime). The
    /// composer owning both the `System` and the participant ticks it
    /// whenever [`pending`](Self::pending)/[`step`](Self::step) report
    /// the domain firing.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has already stepped: a clock registered
    /// mid-run would have edges in the past.
    pub fn register_domain(&mut self, label: &'static str, period_ps: u64) -> DomainId {
        assert!(
            !self.stepped,
            "clock domains must be registered before the first step"
        );
        self.clocks.add_period_ps(label, period_ps)
    }

    /// The set of domains that will fire on the next [`step`](Self::step),
    /// without advancing anything. External participants registered via
    /// [`register_domain`](Self::register_domain) use this to act at
    /// their edge *before* the machine's components tick it.
    pub fn pending(&self) -> Fired {
        self.clocks.peek()
    }

    /// Power/activity samples collected so far.
    pub fn power_samples(&self) -> &[PowerSample] {
        &self.power_samples
    }

    /// Scheduler work counters (events processed, domain fires, edges
    /// skipped by idle-skip).
    pub fn timing_stats(&self) -> TimingStats {
        self.clocks.timing_stats()
    }

    /// Arm the wall-time self-profile: from now on [`step`](Self::step)
    /// measures host wall time around each internal domain's tick phase
    /// and [`credit_domain_wall_ns`](Self::credit_domain_wall_ns)
    /// accepts composer credit for external domains. Off by default —
    /// the measurement is host-machine noise and must stay out of every
    /// deterministic artifact, so nothing here ever touches simulated
    /// state.
    pub fn enable_self_profile(&mut self) {
        self.profile = true;
        self.wall_ns.resize(self.clocks.len().max(64), 0);
    }

    /// Whether the wall-time self-profile is armed.
    pub fn self_profile_enabled(&self) -> bool {
        self.profile
    }

    /// Credit host wall time spent ticking an external (composer-owned)
    /// domain. No-op unless self-profiling is enabled, so composers can
    /// call it unconditionally.
    pub fn credit_domain_wall_ns(&mut self, d: DomainId, wall_ns: u64) {
        if !self.profile {
            return;
        }
        if d.index() >= self.wall_ns.len() {
            self.wall_ns.resize(d.index() + 1, 0);
        }
        self.wall_ns[d.index()] += wall_ns;
    }

    /// The simulator's self-profile: one [`DomainProfile`] per
    /// registered clock domain, in registration order. The fire/skip
    /// attribution is always live (and deterministic); `wall_ns` is
    /// populated only while [`enable_self_profile`](Self::enable_self_profile)
    /// is on.
    pub fn self_profile(&self) -> Vec<DomainProfile> {
        (0..self.clocks.len())
            .map(|i| {
                let d = DomainId::from_index(i);
                DomainProfile {
                    label: self.clocks.label(d),
                    fires: self.clocks.domain_fires(d),
                    skipped: self.clocks.domain_skipped(d),
                    wall_ns: self.wall_ns.get(i).copied().unwrap_or(0),
                }
            })
            .collect()
    }

    /// How many elided edges domain `d`'s next fire will fold in — the
    /// catch-up count a composer must [`Tickable::skip`] its external
    /// participant by before ticking it at the edge. Always 0 under the
    /// cycle-stepped driver.
    pub fn pending_missed(&self, d: DomainId) -> u64 {
        self.clocks.pending_missed(d)
    }

    /// Catch every engine's clock up to its cycle count at tick `now`
    /// exclusive (edges strictly before `now`), so composer-side reads
    /// of [`Dce::cycle`] (e.g. posted-cycle stamps on dispatch) are
    /// exact even if an engine's domain slept. No-op when caught up.
    pub fn sync_engines_to(&mut self, now: u64) {
        for s in 0..self.engines.len() {
            let target = self.clocks.edges_before(self.domains.dce[s], now);
            let dce = &mut self.engines[s];
            let deficit = target.saturating_sub(dce.cycle());
            if deficit > 0 {
                Tickable::skip(dce, deficit);
            }
        }
    }

    /// Re-arm the domain of every engine holding work (an active job or
    /// queued descriptors) at its first edge at or after tick `now` —
    /// the wake half of the doorbell/submit protocol. No-op for armed
    /// domains that are already due earlier.
    pub fn wake_engines(&mut self, now: u64) {
        for s in 0..self.engines.len() {
            let e = &self.engines[s];
            if e.busy() || e.pending_descriptors() > 0 {
                self.clocks.wake_at(self.domains.dce[s], now);
            }
        }
    }

    /// Set an external domain's horizon: `None` parks it, `Some(ns)`
    /// defers it to its first edge whose tick-to-ns conversion is at or
    /// past `ns` (so an edge-indexed participant computing time as
    /// `ticks_to_ns(edge * period)` observes `>= ns` on its wake edge).
    /// Composers own their registered domains' horizons; the machine's
    /// internal domains are managed by [`step`](Self::step) itself.
    pub fn set_domain_horizon_ns(&mut self, d: DomainId, ns: Option<f64>) {
        match ns {
            None => self.clocks.park(d),
            Some(ns) => {
                let e = self.clocks.edge_at_or_after_ns(d, ns);
                self.clocks.defer_to_edge(d, e);
            }
        }
    }

    /// Re-arm an external domain at every edge from its first
    /// undelivered one on (the busy horizon).
    pub fn arm_domain(&mut self, d: DomainId) {
        let e = self.clocks.delivered(d);
        self.clocks.defer_to_edge(d, e);
    }

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> f64 {
        ticks_to_ns(self.t)
    }

    /// Drain `source`'s pending requests into the controller queues,
    /// honoring per-queue back-pressure (a refused request stops the
    /// drain; the source keeps it queued).
    ///
    /// A request is a cross-domain input: before an accepted `enqueue`
    /// the target controller is caught up to the cycle count it would
    /// hold had it ticked at every one of its edges before tick `t` (so
    /// the arrival stamp is exact even if the controller was parked),
    /// and its domain is re-armed at its first edge at or after `t`.
    /// Both are no-ops under the cycle-stepped driver.
    ///
    /// `ticked` says whether each controller group's phase has already
    /// run in the *current* step. A drain that happens after the
    /// group's phase (the post-tick refills) arrives *after* the edge at
    /// `t` under the cycle-stepped driver — the request is invisible
    /// until the controller's next cycle. The catch-up target and wake
    /// edge must reproduce that: catch up *through* `t` and wake at the
    /// first edge strictly after it, or a slept controller would see the
    /// request one cycle earlier than the reference.
    fn drain_requests(
        source: &mut dyn Tickable,
        dram: &mut [MemController],
        pim: &mut [MemController],
        clocks: &mut ClockDomains,
        domains: &Domains,
        t: u64,
        ticked: PhasePos,
    ) {
        source.drain_outputs(&mut |out| match out {
            Output::Request { space, req } => {
                let (ctrl, dom, ticked) = match space {
                    MemSpace::Dram => (
                        &mut dram[req.addr.channel as usize],
                        domains.dram,
                        ticked.dram,
                    ),
                    MemSpace::Pim => (&mut pim[req.addr.channel as usize], domains.pim, ticked.pim),
                };
                if ctrl.can_accept(req.kind) {
                    let target = if ticked {
                        clocks.edges_through(dom, t)
                    } else {
                        clocks.edges_before(dom, t)
                    };
                    let deficit = target.saturating_sub(ctrl.clock());
                    if deficit > 0 {
                        Tickable::skip(ctrl, deficit);
                    }
                    ctrl.enqueue(req).expect("capacity checked");
                    clocks.wake_at(dom, if ticked { t + 1 } else { t });
                    true
                } else {
                    false
                }
            }
            Output::Done(_) => unreachable!("request sources do not emit completions"),
        });
    }

    /// Top every request source's queue back up (after controllers freed
    /// queue slots, or after a source ticked). `ticked` carries the
    /// current step's phase position (see
    /// [`drain_requests`](Self::drain_requests)).
    fn refill_controller_queues(&mut self, ticked: PhasePos) {
        let t = self.t;
        Self::drain_requests(
            &mut self.cluster,
            &mut self.dram,
            &mut self.pim,
            &mut self.clocks,
            &self.domains,
            t,
            ticked,
        );
        for dce in &mut self.engines {
            Self::drain_requests(
                dce,
                &mut self.dram,
                &mut self.pim,
                &mut self.clocks,
                &self.domains,
                t,
                ticked,
            );
        }
    }

    /// Tick one controller group and route its completions back to the
    /// component that issued each request. `target` is the group
    /// domain's delivered-edge count minus one: each controller is first
    /// caught up over any edges skipped while it was quiescent, so its
    /// clock entering the tick equals the cycle-stepped driver's.
    fn tick_controllers(&mut self, space: MemSpace, target: u64) {
        let ctrls = match space {
            MemSpace::Dram => &mut self.dram,
            MemSpace::Pim => &mut self.pim,
        };
        let mut done: Vec<Output> = Vec::new();
        for c in ctrls.iter_mut() {
            let deficit = target.saturating_sub(c.clock());
            if deficit > 0 {
                Tickable::skip(c, deficit);
            }
            Tickable::tick(c);
            c.drain_outputs(&mut |o| {
                done.push(o);
                true
            });
        }
        for o in done {
            let Output::Done(c) = o else {
                unreachable!("controllers only emit completions")
            };
            // Engine traffic is tagged DCE_SOURCE + shard: route the
            // completion back to the shard that issued the request.
            let shard = c.source.0.wrapping_sub(DCE_SOURCE) as usize;
            if c.source.0 >= DCE_SOURCE && shard < self.engines.len() {
                self.engines[shard].on_completion(c);
            } else {
                self.cluster.on_completion(c);
            }
        }
    }

    /// Start a phase timer iff the self-profile is armed.
    #[inline]
    fn phase_timer(&self) -> Option<std::time::Instant> {
        self.profile.then(std::time::Instant::now)
    }

    /// Fold a finished phase timer into domain `d`'s wall-time bucket.
    #[inline]
    fn phase_credit(&mut self, d: DomainId, t0: Option<std::time::Instant>) {
        if let Some(t0) = t0 {
            // Saturating: a phase cannot plausibly exceed u64 wall ns.
            self.credit_domain_wall_ns(
                d,
                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        }
    }

    /// Advance the simulation by one event (the earliest due clock edge).
    /// Returns which domains fired, so a composer can tick external
    /// participants registered via [`register_domain`](Self::register_domain).
    ///
    /// One code path serves both timing modes: domains are delivered in
    /// the same phase order as the historical cycle-stepped loop, each
    /// component is caught up over any edges skipped while quiescent
    /// right before its tick, and only under
    /// [`TimingMode::EventDriven`] are fresh horizons applied at the end
    /// (under `CycleStepped` no domain is ever parked or deferred, which
    /// reproduces the reference driver exactly).
    pub fn step(&mut self) -> Fired {
        self.stepped = true;
        let now = self.clocks.next_edge();
        self.t = now;
        self.clocks.count_event();
        let mut mask = 0u64;

        if self.clocks.take_due(self.domains.cpu, now).is_some() {
            mask |= 1 << self.domains.cpu.index();
            let t0 = self.phase_timer();
            let target = self.clocks.delivered(self.domains.cpu) - 1;
            let deficit = target.saturating_sub(self.cluster.clock());
            if deficit > 0 {
                Tickable::skip(&mut self.cluster, deficit);
            }
            Tickable::tick(&mut self.cluster);
            Self::drain_requests(
                &mut self.cluster,
                &mut self.dram,
                &mut self.pim,
                &mut self.clocks,
                &self.domains,
                now,
                PhasePos::PRE,
            );
            self.phase_credit(self.domains.cpu, t0);
        }
        for s in 0..self.engines.len() {
            if self.clocks.take_due(self.domains.dce[s], now).is_some() {
                mask |= 1 << self.domains.dce[s].index();
                let t0 = self.phase_timer();
                let target = self.clocks.delivered(self.domains.dce[s]) - 1;
                let dce = &mut self.engines[s];
                let deficit = target.saturating_sub(dce.cycle());
                if deficit > 0 {
                    Tickable::skip(dce, deficit);
                }
                Tickable::tick(dce);
                Self::drain_requests(
                    dce,
                    &mut self.dram,
                    &mut self.pim,
                    &mut self.clocks,
                    &self.domains,
                    now,
                    PhasePos::PRE,
                );
                self.phase_credit(self.domains.dce[s], t0);
            }
        }
        if self.clocks.take_due(self.domains.dram, now).is_some() {
            mask |= 1 << self.domains.dram.index();
            let t0 = self.phase_timer();
            let target = self.clocks.delivered(self.domains.dram) - 1;
            self.tick_controllers(MemSpace::Dram, target);
            // Controllers freed queue slots: top the queues back up.
            self.refill_controller_queues(PhasePos {
                dram: true,
                pim: false,
            });
            self.phase_credit(self.domains.dram, t0);
        }
        if self.clocks.take_due(self.domains.pim, now).is_some() {
            mask |= 1 << self.domains.pim.index();
            let t0 = self.phase_timer();
            let target = self.clocks.delivered(self.domains.pim) - 1;
            self.tick_controllers(MemSpace::Pim, target);
            self.refill_controller_queues(PhasePos {
                dram: true,
                pim: true,
            });
            self.phase_credit(self.domains.pim, t0);
        }
        if self.clocks.take_due(self.domains.sample, now).is_some() {
            mask |= 1 << self.domains.sample.index();
            let t0 = self.phase_timer();
            self.sample();
            self.phase_credit(self.domains.sample, t0);
        }
        // External domains (registered composers) deliver last; their
        // owners act on `pending()` before calling `step`.
        for i in 0..self.clocks.len() {
            let d = DomainId::from_index(i);
            if self.is_internal(d) {
                continue;
            }
            if self.clocks.take_due(d, now).is_some() {
                mask |= 1 << i;
            }
        }

        if self.cfg.timing == TimingMode::EventDriven {
            self.apply_horizons(mask);
        }
        #[cfg(feature = "sanitize")]
        self.sanitize_check(now);
        Fired::new(now, mask)
    }

    /// Whether `d` is one of the machine's own domains (as opposed to an
    /// externally registered composer domain).
    fn is_internal(&self, d: DomainId) -> bool {
        d == self.domains.cpu
            || d == self.domains.dram
            || d == self.domains.pim
            || d == self.domains.sample
            || self.domains.dce.contains(&d)
    }

    /// Recompute and apply the event horizon of every internal domain
    /// that *fired* this step (event-driven mode only). A component's
    /// state only changes when it ticks or when new input arrives;
    /// arrivals re-arm the target domain through `wake_at` at the drain
    /// site, so a domain that did not fire still holds a valid horizon
    /// and is skipped here — this keeps the per-event cost of the
    /// event-driven driver close to the cycle-stepped loop's. External
    /// domains are left to their composer.
    fn apply_horizons(&mut self, fired: u64) {
        let hit = |d: DomainId| fired & (1 << d.index()) != 0;
        if hit(self.domains.cpu) {
            let h = Tickable::next_event(&self.cluster, self.cluster.clock());
            Self::apply_horizon(&mut self.clocks, self.domains.cpu, h);
        }
        for s in 0..self.engines.len() {
            if hit(self.domains.dce[s]) {
                let e = &self.engines[s];
                let h = Tickable::next_event(e, e.cycle());
                Self::apply_horizon(&mut self.clocks, self.domains.dce[s], h);
            }
        }
        if hit(self.domains.dram) {
            let h = Self::group_horizon(&self.dram);
            Self::apply_horizon(&mut self.clocks, self.domains.dram, h);
        }
        if hit(self.domains.pim) {
            let h = Self::group_horizon(&self.pim);
            Self::apply_horizon(&mut self.clocks, self.domains.pim, h);
        }
    }

    /// The earliest horizon over a controller group sharing one domain
    /// (`None` only if every controller is parked-able). Each
    /// controller's horizon is in its own cycle count, which is also its
    /// grid-edge index, so the group minimum is the first edge any
    /// member needs.
    fn group_horizon(ctrls: &[MemController]) -> Option<u64> {
        ctrls
            .iter()
            .filter_map(|c| Tickable::next_event(c, c.clock()))
            .min()
    }

    fn apply_horizon(clocks: &mut ClockDomains, d: DomainId, h: Option<u64>) {
        match h {
            Some(e) => clocks.defer_to_edge(d, e),
            None => clocks.park(d),
        }
    }

    /// Run until `pred` returns true or `max_ns` elapses. Returns whether
    /// the predicate fired.
    pub fn run_until(&mut self, max_ns: f64, mut pred: impl FnMut(&System) -> bool) -> bool {
        let max_ticks = ns_ticks_floor(max_ns);
        while self.t < max_ticks {
            if pred(self) {
                return true;
            }
            self.step();
        }
        pred(self)
    }

    /// Cumulative counters summed over every component.
    fn totals(&self) -> Snapshot {
        let mut counters = self.cluster.stats_snapshot();
        for dce in &self.engines {
            counters.merge(&dce.stats_snapshot());
        }
        for c in self.dram.iter().chain(self.pim.iter()) {
            counters.merge(&c.stats_snapshot());
        }
        Snapshot {
            t_ns: self.now_ns(),
            counters,
        }
    }

    /// Activity since `snap`, as energy-model input.
    fn delta_counts(&self, snap: &Snapshot, now: &Snapshot) -> ActivityCounts {
        let d = now.counters.delta(&snap.counters);
        ActivityCounts {
            duration_ns: now.t_ns - snap.t_ns,
            cores: self.cfg.cpu.cores,
            core_active_cycles: d.core_active_cycles,
            // AVX premium applied per transfer-loop instruction.
            avx_cycles: d.transfer_instr,
            llc_accesses: d.llc_accesses,
            ranks: self.cfg.dram_org.channels * self.cfg.dram_org.ranks
                + self.cfg.pim_org.channels * self.cfg.pim_org.ranks,
            dram_acts: d.dram_activates,
            dram_reads: d.dram_reads,
            dram_writes: d.dram_writes,
            dram_refreshes: d.dram_refreshes,
            dce_lines: d.dce_lines,
            pimmmu_present: !self.engines.is_empty(),
        }
    }

    fn sample(&mut self) {
        // Window boundaries read component clocks: catch every component
        // up to the cycle count the cycle-stepped driver would show at
        // this tick (edges at or before `t`, since components tick
        // before the sampler at coincident edges). No-ops unless edges
        // were skipped.
        let t = self.t;
        let target = self.clocks.edges_through(self.domains.cpu, t);
        let deficit = target.saturating_sub(self.cluster.clock());
        if deficit > 0 {
            Tickable::skip(&mut self.cluster, deficit);
        }
        for (dom, ctrls) in [
            (self.domains.dram, &mut self.dram),
            (self.domains.pim, &mut self.pim),
        ] {
            let target = self.clocks.edges_through(dom, t);
            for c in ctrls.iter_mut() {
                let deficit = target.saturating_sub(c.clock());
                if deficit > 0 {
                    Tickable::skip(c, deficit);
                }
            }
        }

        self.cluster.sample_active_cores();
        for c in self.dram.iter_mut().chain(self.pim.iter_mut()) {
            let clock = c.clock();
            c.stats_mut().sample_window(clock);
        }
        let now = self.totals();
        let counts = self.delta_counts(&self.snap.clone(), &now);
        let watts = counts.avg_power_w(&self.cfg.power);
        let active = self
            .cluster
            .stats()
            .active_samples
            .last()
            .map(|&(_, a)| a)
            .unwrap_or(0);
        self.power_samples.push(PowerSample {
            t_ns: now.t_ns,
            active_cores: active,
            watts,
        });
        self.snap = now;
    }

    /// Close the trailing (partial) sampling window so stats/time-series
    /// include everything up to the current cycle.
    pub fn finish_sampling(&mut self) {
        self.sample();
    }

    /// Total activity from simulation start (for whole-run energy).
    pub fn total_activity(&self) -> ActivityCounts {
        self.delta_counts(&Snapshot::default(), &self.totals())
    }

    /// Aggregate data-bus utilization over one controller group.
    pub fn bus_utilization(&self, space: MemSpace) -> f64 {
        let ctrls = match space {
            MemSpace::Dram => &self.dram,
            MemSpace::Pim => &self.pim,
        };
        let n = ctrls.len().max(1) as f64;
        ctrls
            .iter()
            .map(|c| c.stats().bus_utilization())
            .sum::<f64>()
            / n
    }

    /// Whether all controllers are fully drained.
    pub fn memory_idle(&self) -> bool {
        self.dram.iter().chain(self.pim.iter()).all(|c| c.idle())
    }

    /// Mutable access to the cluster (for wiring additional threads'
    /// completion checks in tests).
    pub fn cluster_mut(&mut self) -> &mut CpuCluster {
        &mut self.cluster
    }

    /// Sum of written bytes on each PIM channel per sampling window.
    pub fn pim_channel_write_windows(&self) -> Vec<Vec<u64>> {
        self.pim
            .iter()
            .map(|c| c.stats().windows.iter().map(|w| w.bytes_written).collect())
            .collect()
    }

    /// Read+written bytes on each DRAM channel per sampling window.
    pub fn dram_channel_windows(&self) -> Vec<Vec<u64>> {
        self.dram
            .iter()
            .map(|c| {
                c.stats()
                    .windows
                    .iter()
                    .map(|w| w.bytes_read + w.bytes_written)
                    .collect()
            })
            .collect()
    }
}

/// The scheduler shadow checker (see [`crate::sanitize`]). Everything
/// here is pure reads over `clocks` and the components; the only
/// mutation is the sanitizer's own log. The fault-injection entry
/// points exist so tests can prove the checker actually fires — they
/// corrupt scheduler state the way a real horizon bug would.
#[cfg(feature = "sanitize")]
impl System {
    /// Collect violations instead of panicking (fault-injection tests).
    pub fn sanitize_record_only(&mut self) {
        self.sanitizer.record_only();
    }

    /// Violations recorded so far (record mode only; panic mode aborts
    /// on the first finding).
    pub fn sanitize_violations(&self) -> &[crate::sanitize::SanitizeViolation] {
        self.sanitizer.violations()
    }

    /// Inject a **stale horizon**: re-aim the DRAM group's domain well
    /// past its true re-derived horizon, as if `apply_horizons` had
    /// trusted a buggy `next_event` that overshot. The next `step` must
    /// flag it. (Merely *suppressing* a re-aim is not a fault —
    /// `take_due`'s default re-arm at the next grid edge is
    /// conservative — so the injection overshoots instead.)
    ///
    /// # Panics
    ///
    /// Panics if the DRAM group is fully quiescent (nothing to
    /// overshoot past; with refresh modeled this cannot happen).
    pub fn sanitize_inject_stale_horizon(&mut self) {
        let h = Self::group_horizon(&self.dram).expect("DRAM group has a horizon to overshoot");
        let e = h.max(self.clocks.delivered(self.domains.dram));
        self.clocks.defer_to_edge(self.domains.dram, e + 64);
    }

    /// Inject a **lost wakeup**: park the DRAM group's domain even
    /// though its controllers still report pending work (the classic
    /// missed-doorbell shape). The next `step` must flag it.
    pub fn sanitize_inject_lost_wakeup(&mut self) {
        assert!(
            Self::group_horizon(&self.dram).is_some(),
            "DRAM group must have work for the park to lose"
        );
        self.clocks.park(self.domains.dram);
    }

    /// Run every shadow check for the step that just completed at tick
    /// `now` (checks 1–5 of [`crate::sanitize`]).
    fn sanitize_check(&mut self, now: u64) {
        use crate::sanitize::{SanitizeKind, SanitizeViolation};
        self.sanitizer.observe_event(now);

        let mut findings: Vec<SanitizeViolation> = Vec::new();
        // Check 2: no domain (internal or composer-registered) may hold
        // a pending delivery at or before the edge just processed —
        // every due domain was delivered this step.
        for i in 0..self.clocks.len() {
            let d = DomainId::from_index(i);
            if self.clocks.armed(d) && self.clocks.next_tick(d) <= now {
                findings.push(SanitizeViolation {
                    kind: SanitizeKind::ArmedInPast,
                    domain: self.clocks.label(d),
                    t: now,
                    detail: format!(
                        "armed at tick {} which is not after the current event",
                        self.clocks.next_tick(d)
                    ),
                });
            }
        }

        // Check 3: skip reconciliation — neither a component's clock
        // nor a domain's delivered count may run ahead of the grid.
        let mut clock_ahead = |domain: &'static str, clock: u64, limit: u64, what: &str| {
            if clock > limit {
                findings.push(SanitizeViolation {
                    kind: SanitizeKind::ClockAhead,
                    domain,
                    t: now,
                    detail: format!("{what} {clock} exceeds grid edges {limit} at t={now}"),
                });
            }
        };
        for i in 0..self.clocks.len() {
            let d = DomainId::from_index(i);
            clock_ahead(
                self.clocks.label(d),
                self.clocks.delivered(d),
                self.clocks.edges_through(d, now),
                "delivered edges",
            );
        }
        clock_ahead(
            "cpu",
            self.cluster.clock(),
            self.clocks.edges_through(self.domains.cpu, now),
            "component clock",
        );
        for (s, e) in self.engines.iter().enumerate() {
            clock_ahead(
                "dce",
                e.cycle(),
                self.clocks.edges_through(self.domains.dce[s], now),
                "component clock",
            );
        }
        for (dom, ctrls) in [
            (self.domains.dram, &self.dram),
            (self.domains.pim, &self.pim),
        ] {
            for c in ctrls.iter() {
                clock_ahead(
                    self.clocks.label(dom),
                    c.clock(),
                    self.clocks.edges_through(dom, now),
                    "component clock",
                );
            }
        }

        // Check 4: lost-wakeup / stale-horizon — re-derive every
        // internal component's horizon from scratch and compare it with
        // the armed wake. (The sample domain has no component and
        // composer-registered domains manage their own horizons.)
        let mut horizons: Vec<(DomainId, Option<u64>)> = vec![
            (
                self.domains.cpu,
                Tickable::next_event(&self.cluster, self.cluster.clock()),
            ),
            (self.domains.dram, Self::group_horizon(&self.dram)),
            (self.domains.pim, Self::group_horizon(&self.pim)),
        ];
        for (s, e) in self.engines.iter().enumerate() {
            horizons.push((self.domains.dce[s], Tickable::next_event(e, e.cycle())));
        }
        for (d, h) in horizons {
            let Some(e) = h else { continue };
            // `next_event` horizons at or before the delivered count
            // mean "tick me at the very next edge".
            let want = e.max(self.clocks.delivered(d));
            if !self.clocks.armed(d) {
                findings.push(SanitizeViolation {
                    kind: SanitizeKind::LostWakeup,
                    domain: self.clocks.label(d),
                    t: now,
                    detail: format!(
                        "component needs edge {want} but its domain is parked — the work would sleep forever"
                    ),
                });
            } else if self.clocks.pending_edge(d) > want {
                findings.push(SanitizeViolation {
                    kind: SanitizeKind::StaleHorizon,
                    domain: self.clocks.label(d),
                    t: now,
                    detail: format!(
                        "armed for edge {} but the re-derived horizon is edge {want} — the wake would arrive after the work was due",
                        self.clocks.pending_edge(d)
                    ),
                });
            }
        }

        // Check 5: the agenda head must equal the minimum armed next().
        let derived = (0..self.clocks.len())
            .map(DomainId::from_index)
            .filter(|&d| self.clocks.armed(d))
            .map(|d| self.clocks.next_tick(d))
            .min();
        if let Some(min) = derived {
            let head = self.clocks.next_edge();
            if head != min {
                findings.push(SanitizeViolation {
                    kind: SanitizeKind::AgendaMismatch,
                    domain: "-",
                    t: now,
                    detail: format!(
                        "agenda head at tick {head}, minimum armed next() at tick {min}"
                    ),
                });
            }
        }

        for v in findings {
            self.sanitizer.report(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DesignPoint;

    #[test]
    fn empty_system_advances_time() {
        let cfg = SystemConfig::table1(DesignPoint::Baseline);
        let mut sys = System::new(cfg, vec![]);
        let done = sys.run_until(10_000.0, |_| false);
        assert!(!done);
        assert!(sys.now_ns() >= 10_000.0 - 1.0);
        assert!(sys.memory_idle());
    }

    #[test]
    fn dce_present_only_when_designed() {
        let sys = System::new(SystemConfig::table1(DesignPoint::Baseline), vec![]);
        assert!(sys.dce().is_none());
        let sys = System::new(SystemConfig::table1(DesignPoint::BaseDHP), vec![]);
        assert!(sys.dce().is_some());
    }

    #[test]
    fn domains_follow_design_point() {
        // Baseline: cpu + dram + pim + sample. DCE designs add one more.
        let base = System::new(SystemConfig::table1(DesignPoint::Baseline), vec![]);
        assert_eq!(base.clock_domains().len(), 4);
        let full = System::new(SystemConfig::table1(DesignPoint::BaseDHP), vec![]);
        assert_eq!(full.clock_domains().len(), 5);
        assert_eq!(full.clock_domains().label(full.domains.cpu), "cpu");
    }

    #[test]
    fn engine_array_follows_dce_count() {
        let mut cfg = SystemConfig::table1(DesignPoint::BaseDHP);
        cfg.dce_count = 4;
        let sys = System::new(cfg, vec![]);
        assert_eq!(sys.engines().len(), 4);
        // cpu + dram + pim + sample + one domain per engine.
        assert_eq!(sys.clock_domains().len(), 8);
        for (s, e) in sys.engines().iter().enumerate() {
            assert_eq!(e.shard(), u32::try_from(s).unwrap());
        }
        // The single-engine accessors alias shard 0.
        assert_eq!(sys.dce().unwrap().shard(), 0);
        // Designs without a DCE ignore the count.
        let mut base = SystemConfig::table1(DesignPoint::Baseline);
        base.dce_count = 4;
        assert!(System::new(base, vec![]).engines().is_empty());
    }

    #[test]
    fn registered_domain_fires_and_peek_matches_step() {
        let cfg = SystemConfig::table1(DesignPoint::BaseDHP);
        let mut sys = System::new(cfg, vec![]);
        let dom = sys.register_domain("runtime", 312);
        let mut peeked = 0;
        let mut fired = 0;
        for _ in 0..200 {
            let pending = sys.pending();
            if pending.contains(dom) {
                peeked += 1;
            }
            let f = sys.step();
            assert_eq!(pending.now, f.now, "peek must predict the edge");
            assert_eq!(pending.contains(dom), f.contains(dom));
            if f.contains(dom) {
                fired += 1;
            }
        }
        assert_eq!(peeked, fired);
        assert!(fired > 0, "a 3.2 GHz domain fires within 200 events");
        assert_eq!(sys.clock_domains().label(dom), "runtime");
    }

    #[test]
    #[should_panic(expected = "before the first step")]
    fn late_domain_registration_is_rejected() {
        let mut sys = System::new(SystemConfig::table1(DesignPoint::Baseline), vec![]);
        // Even the first step (which only fires the t = 0 edges) closes
        // the registration window: a domain added after it would miss
        // the t = 0 edge the other components already processed.
        sys.step();
        sys.register_domain("late", 312);
    }

    #[test]
    fn self_profile_attributes_scheduler_work_per_domain() {
        let mut cfg = SystemConfig::table1(DesignPoint::BaseDHP);
        cfg.timing = TimingMode::EventDriven;
        let mut sys = System::new(cfg, vec![]);
        assert!(!sys.self_profile_enabled());
        sys.enable_self_profile();
        assert!(sys.self_profile_enabled());
        sys.run_until(10_000.0, |_| false);

        let prof = sys.self_profile();
        assert_eq!(prof.len(), sys.clock_domains().len());
        assert!(prof.iter().any(|p| p.label == "cpu"));
        // The per-domain attribution partitions the aggregate counters.
        let stats = sys.timing_stats();
        assert_eq!(
            prof.iter().map(|p| p.fires).sum::<u64>(),
            stats.domain_ticks
        );
        assert_eq!(
            prof.iter().map(|p| p.skipped).sum::<u64>(),
            stats.edges_skipped
        );
        // An idle machine elides most edges somewhere.
        assert!(prof.iter().any(|p| p.skipped > 0));
        // Wall time was measured (host clocks on this platform are ns
        // resolution; thousands of phase timings cannot sum to zero).
        assert!(prof.iter().map(|p| p.wall_ns).sum::<u64>() > 0);
        // Composer credit lands in the right bucket.
        let d = DomainId::from_index(0);
        let before = sys.self_profile()[0].wall_ns;
        sys.credit_domain_wall_ns(d, 17);
        assert_eq!(sys.self_profile()[0].wall_ns, before + 17);
    }

    #[test]
    fn sampling_produces_series() {
        let mut cfg = SystemConfig::table1(DesignPoint::Baseline);
        cfg.sample_ns = 1000.0;
        let mut sys = System::new(cfg, vec![]);
        sys.run_until(10_500.0, |_| false);
        assert!(sys.power_samples().len() >= 10);
        // Idle system: only the static floor, zero active cores.
        let s = sys.power_samples().last().unwrap();
        assert_eq!(s.active_cores, 0);
        assert!(s.watts > 30.0 && s.watts < 65.0, "{}", s.watts);
    }
}
