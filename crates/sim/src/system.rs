//! The assembled system: CPU cluster + DCE + DRAM/PIM memory controllers
//! composed over the [`crate::engine`] component engine.
//!
//! `System` owns no per-component clock bookkeeping: every clock lives in
//! a [`ClockDomains`] scheduler, every component is driven through the
//! [`Tickable`] surface, and `step` is pure composition — advance to the
//! earliest edge, tick whichever domains fired, wire outputs together.

use crate::clock::{ticks_to_ns, TICKS_PER_NS};
use crate::config::SystemConfig;
use crate::engine::{ClockDomains, DomainId, Fired, Output, StatsSnapshot, Tickable};
use crate::result::PowerSample;
use pim_cpu::{CpuCluster, Thread};
use pim_dram::MemController;
use pim_energy::ActivityCounts;
use pim_mapping::{HetMap, MemSpace, PimAddrSpace};
use pim_mmu::dce::DCE_SOURCE;
use pim_mmu::Dce;

/// [`DomainId`] handles for the registered clock domains (the clocks
/// themselves live in [`ClockDomains`]).
#[derive(Debug, Clone)]
struct Domains {
    cpu: DomainId,
    dram: DomainId,
    pim: DomainId,
    /// One domain per instantiated engine (empty iff the design has no
    /// DCE); engine `s` ticks at `dce[s]`'s edges.
    dce: Vec<DomainId>,
    sample: DomainId,
}

/// The evaluated machine.
pub struct System {
    /// Configuration in force.
    pub cfg: SystemConfig,
    mapper: HetMap,
    cluster: CpuCluster,
    /// The DCE engine array: `cfg.dce_count` shards when the design uses
    /// a DCE, each with its own clock domain and shard-tagged source id.
    engines: Vec<Dce>,
    dram: Vec<MemController>,
    pim: Vec<MemController>,
    t: u64,
    /// Whether `step` has run (guards late domain registration, which
    /// `t` alone cannot: the first step fires the t = 0 edges).
    stepped: bool,
    clocks: ClockDomains,
    domains: Domains,
    snap: Snapshot,
    power_samples: Vec<PowerSample>,
}

/// Timestamped counter snapshot for windowed power computation.
#[derive(Debug, Clone, Copy, Default)]
struct Snapshot {
    t_ns: f64,
    counters: StatsSnapshot,
}

impl System {
    /// Build a system running `threads` on the CPU; a DCE is instantiated
    /// iff the design point uses one.
    pub fn new(cfg: SystemConfig, threads: Vec<Thread>) -> Self {
        let mapper = cfg.mapper();
        let cluster = CpuCluster::new(cfg.cpu, mapper.clone(), threads);
        let engines: Vec<Dce> = if cfg.design.uses_dce() {
            let space = PimAddrSpace::new(mapper.pim_base(), cfg.pim_org);
            (0..cfg.dce_count.max(1))
                .map(|s| Dce::with_shard(cfg.dce, mapper.clone(), space, s as u32))
                .collect()
        } else {
            Vec::new()
        };
        let ctrl_cfg = cfg.controller_config();
        let dram = (0..cfg.dram_org.channels)
            .map(|_| MemController::with_config(cfg.dram_org, cfg.dram_timing, ctrl_cfg))
            .collect();
        let pim = (0..cfg.pim_org.channels)
            .map(|_| MemController::with_config(cfg.pim_org, cfg.pim_timing, ctrl_cfg))
            .collect();

        let mut clocks = ClockDomains::new();
        let domains = Domains {
            cpu: clocks.add_period_ps("cpu", cfg.cpu.period_ps()),
            dram: clocks.add_period_ps("dram", cfg.dram_timing.t_ck_ps),
            pim: clocks.add_period_ps("pim", cfg.pim_timing.t_ck_ps),
            dce: engines
                .iter()
                .map(|_| clocks.add_period_ps("dce", cfg.dce.period_ps()))
                .collect(),
            sample: clocks.add_period_ticks("sample", (cfg.sample_ns * TICKS_PER_NS as f64) as u64),
        };
        System {
            mapper,
            cluster,
            engines,
            dram,
            pim,
            t: 0,
            stepped: false,
            clocks,
            domains,
            snap: Snapshot::default(),
            power_samples: Vec::new(),
            cfg,
        }
    }

    /// The memory mapping installed by this design.
    pub fn mapper(&self) -> &HetMap {
        &self.mapper
    }

    /// The CPU cluster.
    pub fn cluster(&self) -> &CpuCluster {
        &self.cluster
    }

    /// The first DCE engine, when present (the single-engine view; the
    /// one-shot harness and every pre-sharding caller use this).
    pub fn dce(&self) -> Option<&Dce> {
        self.engines.first()
    }

    /// Mutable access to the first DCE engine (for job submission).
    pub fn dce_mut(&mut self) -> Option<&mut Dce> {
        self.engines.first_mut()
    }

    /// The full engine array (empty iff the design has no DCE); engine
    /// `s` is shard `s`.
    pub fn engines(&self) -> &[Dce] {
        &self.engines
    }

    /// Mutable access to the whole engine array (a sharded runtime
    /// dispatches across every shard at once).
    pub fn engines_mut(&mut self) -> &mut [Dce] {
        &mut self.engines
    }

    /// Mutable access to one shard's engine.
    pub fn engine_mut(&mut self, shard: usize) -> Option<&mut Dce> {
        self.engines.get_mut(shard)
    }

    /// DRAM-side controllers.
    pub fn dram_controllers(&self) -> &[MemController] {
        &self.dram
    }

    /// PIM-side controllers.
    pub fn pim_controllers(&self) -> &[MemController] {
        &self.pim
    }

    /// The clock-domain scheduler (labels, edge inspection).
    pub fn clock_domains(&self) -> &ClockDomains {
        &self.clocks
    }

    /// Register an additional clock domain for an external [`Tickable`]
    /// participant (e.g. a host-side transfer-queue runtime). The
    /// composer owning both the `System` and the participant ticks it
    /// whenever [`pending`](Self::pending)/[`step`](Self::step) report
    /// the domain firing.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has already stepped: a clock registered
    /// mid-run would have edges in the past.
    pub fn register_domain(&mut self, label: &'static str, period_ps: u64) -> DomainId {
        assert!(
            !self.stepped,
            "clock domains must be registered before the first step"
        );
        self.clocks.add_period_ps(label, period_ps)
    }

    /// The set of domains that will fire on the next [`step`](Self::step),
    /// without advancing anything. External participants registered via
    /// [`register_domain`](Self::register_domain) use this to act at
    /// their edge *before* the machine's components tick it.
    pub fn pending(&self) -> Fired {
        self.clocks.peek()
    }

    /// Power/activity samples collected so far.
    pub fn power_samples(&self) -> &[PowerSample] {
        &self.power_samples
    }

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> f64 {
        ticks_to_ns(self.t)
    }

    /// Drain `source`'s pending requests into the controller queues,
    /// honoring per-queue back-pressure (a refused request stops the
    /// drain; the source keeps it queued).
    fn drain_requests(
        source: &mut dyn Tickable,
        dram: &mut [MemController],
        pim: &mut [MemController],
    ) {
        source.drain_outputs(&mut |out| match out {
            Output::Request { space, req } => {
                let ctrl = match space {
                    MemSpace::Dram => &mut dram[req.addr.channel as usize],
                    MemSpace::Pim => &mut pim[req.addr.channel as usize],
                };
                if ctrl.can_accept(req.kind) {
                    ctrl.enqueue(req).expect("capacity checked");
                    true
                } else {
                    false
                }
            }
            Output::Done(_) => unreachable!("request sources do not emit completions"),
        });
    }

    /// Top every request source's queue back up (after controllers freed
    /// queue slots, or after a source ticked).
    fn refill_controller_queues(&mut self) {
        Self::drain_requests(&mut self.cluster, &mut self.dram, &mut self.pim);
        for dce in &mut self.engines {
            Self::drain_requests(dce, &mut self.dram, &mut self.pim);
        }
    }

    /// Tick one controller group and route its completions back to the
    /// component that issued each request.
    fn tick_controllers(&mut self, space: MemSpace) {
        let ctrls = match space {
            MemSpace::Dram => &mut self.dram,
            MemSpace::Pim => &mut self.pim,
        };
        let mut done: Vec<Output> = Vec::new();
        for c in ctrls.iter_mut() {
            Tickable::tick(c);
            c.drain_outputs(&mut |o| {
                done.push(o);
                true
            });
        }
        for o in done {
            let Output::Done(c) = o else {
                unreachable!("controllers only emit completions")
            };
            // Engine traffic is tagged DCE_SOURCE + shard: route the
            // completion back to the shard that issued the request.
            let shard = c.source.0.wrapping_sub(DCE_SOURCE) as usize;
            if c.source.0 >= DCE_SOURCE && shard < self.engines.len() {
                self.engines[shard].on_completion(c);
            } else {
                self.cluster.on_completion(c);
            }
        }
    }

    /// Advance the simulation by one event (the earliest due clock edge).
    /// Returns which domains fired, so a composer can tick external
    /// participants registered via [`register_domain`](Self::register_domain).
    pub fn step(&mut self) -> Fired {
        self.stepped = true;
        let fired = self.clocks.advance();
        self.t = fired.now;

        if fired.contains(self.domains.cpu) {
            Tickable::tick(&mut self.cluster);
            Self::drain_requests(&mut self.cluster, &mut self.dram, &mut self.pim);
        }
        for s in 0..self.engines.len() {
            if fired.contains(self.domains.dce[s]) {
                let dce = &mut self.engines[s];
                Tickable::tick(dce);
                Self::drain_requests(dce, &mut self.dram, &mut self.pim);
            }
        }
        if fired.contains(self.domains.dram) {
            self.tick_controllers(MemSpace::Dram);
            // Controllers freed queue slots: top the queues back up.
            self.refill_controller_queues();
        }
        if fired.contains(self.domains.pim) {
            self.tick_controllers(MemSpace::Pim);
            self.refill_controller_queues();
        }
        if fired.contains(self.domains.sample) {
            self.sample();
        }
        fired
    }

    /// Run until `pred` returns true or `max_ns` elapses. Returns whether
    /// the predicate fired.
    pub fn run_until(&mut self, max_ns: f64, mut pred: impl FnMut(&System) -> bool) -> bool {
        let max_ticks = (max_ns * TICKS_PER_NS as f64) as u64;
        while self.t < max_ticks {
            if pred(self) {
                return true;
            }
            self.step();
        }
        pred(self)
    }

    /// Cumulative counters summed over every component.
    fn totals(&self) -> Snapshot {
        let mut counters = self.cluster.stats_snapshot();
        for dce in &self.engines {
            counters.merge(&dce.stats_snapshot());
        }
        for c in self.dram.iter().chain(self.pim.iter()) {
            counters.merge(&c.stats_snapshot());
        }
        Snapshot {
            t_ns: self.now_ns(),
            counters,
        }
    }

    /// Activity since `snap`, as energy-model input.
    fn delta_counts(&self, snap: &Snapshot, now: &Snapshot) -> ActivityCounts {
        let d = now.counters.delta(&snap.counters);
        ActivityCounts {
            duration_ns: now.t_ns - snap.t_ns,
            cores: self.cfg.cpu.cores,
            core_active_cycles: d.core_active_cycles,
            // AVX premium applied per transfer-loop instruction.
            avx_cycles: d.transfer_instr,
            llc_accesses: d.llc_accesses,
            ranks: self.cfg.dram_org.channels * self.cfg.dram_org.ranks
                + self.cfg.pim_org.channels * self.cfg.pim_org.ranks,
            dram_acts: d.dram_activates,
            dram_reads: d.dram_reads,
            dram_writes: d.dram_writes,
            dram_refreshes: d.dram_refreshes,
            dce_lines: d.dce_lines,
            pimmmu_present: !self.engines.is_empty(),
        }
    }

    fn sample(&mut self) {
        self.cluster.sample_active_cores();
        for c in self.dram.iter_mut().chain(self.pim.iter_mut()) {
            let clock = c.clock();
            c.stats_mut().sample_window(clock);
        }
        let now = self.totals();
        let counts = self.delta_counts(&self.snap.clone(), &now);
        let watts = counts.avg_power_w(&self.cfg.power);
        let active = self
            .cluster
            .stats()
            .active_samples
            .last()
            .map(|&(_, a)| a)
            .unwrap_or(0);
        self.power_samples.push(PowerSample {
            t_ns: now.t_ns,
            active_cores: active,
            watts,
        });
        self.snap = now;
    }

    /// Close the trailing (partial) sampling window so stats/time-series
    /// include everything up to the current cycle.
    pub fn finish_sampling(&mut self) {
        self.sample();
    }

    /// Total activity from simulation start (for whole-run energy).
    pub fn total_activity(&self) -> ActivityCounts {
        self.delta_counts(&Snapshot::default(), &self.totals())
    }

    /// Aggregate data-bus utilization over one controller group.
    pub fn bus_utilization(&self, space: MemSpace) -> f64 {
        let ctrls = match space {
            MemSpace::Dram => &self.dram,
            MemSpace::Pim => &self.pim,
        };
        let n = ctrls.len().max(1) as f64;
        ctrls
            .iter()
            .map(|c| c.stats().bus_utilization())
            .sum::<f64>()
            / n
    }

    /// Whether all controllers are fully drained.
    pub fn memory_idle(&self) -> bool {
        self.dram.iter().chain(self.pim.iter()).all(|c| c.idle())
    }

    /// Mutable access to the cluster (for wiring additional threads'
    /// completion checks in tests).
    pub fn cluster_mut(&mut self) -> &mut CpuCluster {
        &mut self.cluster
    }

    /// Sum of written bytes on each PIM channel per sampling window.
    pub fn pim_channel_write_windows(&self) -> Vec<Vec<u64>> {
        self.pim
            .iter()
            .map(|c| c.stats().windows.iter().map(|w| w.bytes_written).collect())
            .collect()
    }

    /// Read+written bytes on each DRAM channel per sampling window.
    pub fn dram_channel_windows(&self) -> Vec<Vec<u64>> {
        self.dram
            .iter()
            .map(|c| {
                c.stats()
                    .windows
                    .iter()
                    .map(|w| w.bytes_read + w.bytes_written)
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DesignPoint;

    #[test]
    fn empty_system_advances_time() {
        let cfg = SystemConfig::table1(DesignPoint::Baseline);
        let mut sys = System::new(cfg, vec![]);
        let done = sys.run_until(10_000.0, |_| false);
        assert!(!done);
        assert!(sys.now_ns() >= 10_000.0 - 1.0);
        assert!(sys.memory_idle());
    }

    #[test]
    fn dce_present_only_when_designed() {
        let sys = System::new(SystemConfig::table1(DesignPoint::Baseline), vec![]);
        assert!(sys.dce().is_none());
        let sys = System::new(SystemConfig::table1(DesignPoint::BaseDHP), vec![]);
        assert!(sys.dce().is_some());
    }

    #[test]
    fn domains_follow_design_point() {
        // Baseline: cpu + dram + pim + sample. DCE designs add one more.
        let base = System::new(SystemConfig::table1(DesignPoint::Baseline), vec![]);
        assert_eq!(base.clock_domains().len(), 4);
        let full = System::new(SystemConfig::table1(DesignPoint::BaseDHP), vec![]);
        assert_eq!(full.clock_domains().len(), 5);
        assert_eq!(full.clock_domains().label(full.domains.cpu), "cpu");
    }

    #[test]
    fn engine_array_follows_dce_count() {
        let mut cfg = SystemConfig::table1(DesignPoint::BaseDHP);
        cfg.dce_count = 4;
        let sys = System::new(cfg, vec![]);
        assert_eq!(sys.engines().len(), 4);
        // cpu + dram + pim + sample + one domain per engine.
        assert_eq!(sys.clock_domains().len(), 8);
        for (s, e) in sys.engines().iter().enumerate() {
            assert_eq!(e.shard(), s as u32);
        }
        // The single-engine accessors alias shard 0.
        assert_eq!(sys.dce().unwrap().shard(), 0);
        // Designs without a DCE ignore the count.
        let mut base = SystemConfig::table1(DesignPoint::Baseline);
        base.dce_count = 4;
        assert!(System::new(base, vec![]).engines().is_empty());
    }

    #[test]
    fn registered_domain_fires_and_peek_matches_step() {
        let cfg = SystemConfig::table1(DesignPoint::BaseDHP);
        let mut sys = System::new(cfg, vec![]);
        let dom = sys.register_domain("runtime", 312);
        let mut peeked = 0;
        let mut fired = 0;
        for _ in 0..200 {
            let pending = sys.pending();
            if pending.contains(dom) {
                peeked += 1;
            }
            let f = sys.step();
            assert_eq!(pending.now, f.now, "peek must predict the edge");
            assert_eq!(pending.contains(dom), f.contains(dom));
            if f.contains(dom) {
                fired += 1;
            }
        }
        assert_eq!(peeked, fired);
        assert!(fired > 0, "a 3.2 GHz domain fires within 200 events");
        assert_eq!(sys.clock_domains().label(dom), "runtime");
    }

    #[test]
    #[should_panic(expected = "before the first step")]
    fn late_domain_registration_is_rejected() {
        let mut sys = System::new(SystemConfig::table1(DesignPoint::Baseline), vec![]);
        // Even the first step (which only fires the t = 0 edges) closes
        // the registration window: a domain added after it would miss
        // the t = 0 edge the other components already processed.
        sys.step();
        sys.register_domain("late", 312);
    }

    #[test]
    fn sampling_produces_series() {
        let mut cfg = SystemConfig::table1(DesignPoint::Baseline);
        cfg.sample_ns = 1000.0;
        let mut sys = System::new(cfg, vec![]);
        sys.run_until(10_500.0, |_| false);
        assert!(sys.power_samples().len() >= 10);
        // Idle system: only the static floor, zero active cores.
        let s = sys.power_samples().last().unwrap();
        assert_eq!(s.active_cores, 0);
        assert!(s.watts > 30.0 && s.watts < 65.0, "{}", s.watts);
    }
}
