//! The assembled system: CPU cluster + DCE + DRAM/PIM memory controllers
//! on their clock domains.

use crate::clock::{ticks_to_ns, Clock, TICKS_PER_NS};
use crate::config::SystemConfig;
use crate::result::PowerSample;
use pim_cpu::{CpuCluster, Thread};
use pim_dram::MemController;
use pim_energy::ActivityCounts;
use pim_mapping::{HetMap, MemSpace, PimAddrSpace};
use pim_mmu::dce::DCE_SOURCE;
use pim_mmu::Dce;

/// The evaluated machine.
pub struct System {
    /// Configuration in force.
    pub cfg: SystemConfig,
    mapper: HetMap,
    cluster: CpuCluster,
    dce: Option<Dce>,
    dram: Vec<MemController>,
    pim: Vec<MemController>,
    t: u64,
    cpu_clk: Clock,
    dram_clk: Clock,
    pim_clk: Clock,
    dce_clk: Clock,
    sample_clk: Clock,
    snap: Snapshot,
    power_samples: Vec<PowerSample>,
}

/// Raw counter snapshot for windowed power computation.
#[derive(Debug, Clone, Copy, Default)]
struct Snapshot {
    t_ns: f64,
    core_active: u64,
    avx_instr: u64,
    llc: u64,
    acts: u64,
    reads: u64,
    writes: u64,
    refreshes: u64,
    dce_lines: u64,
}

impl System {
    /// Build a system running `threads` on the CPU; a DCE is instantiated
    /// iff the design point uses one.
    pub fn new(cfg: SystemConfig, threads: Vec<Thread>) -> Self {
        let mapper = cfg.mapper();
        let cluster = CpuCluster::new(cfg.cpu, mapper.clone(), threads);
        let dce = cfg.design.uses_dce().then(|| {
            let space = PimAddrSpace::new(mapper.pim_base(), cfg.pim_org);
            Dce::new(cfg.dce, mapper.clone(), space)
        });
        let ctrl_cfg = cfg.controller_config();
        let dram = (0..cfg.dram_org.channels)
            .map(|_| MemController::with_config(cfg.dram_org, cfg.dram_timing, ctrl_cfg))
            .collect();
        let pim = (0..cfg.pim_org.channels)
            .map(|_| MemController::with_config(cfg.pim_org, cfg.pim_timing, ctrl_cfg))
            .collect();
        let sample_ticks = (cfg.sample_ns * TICKS_PER_NS as f64) as u64;
        System {
            mapper,
            cluster,
            dce,
            dram,
            pim,
            t: 0,
            cpu_clk: Clock::from_period_ps(cfg.cpu.period_ps()),
            dram_clk: Clock::from_period_ps(cfg.dram_timing.t_ck_ps),
            pim_clk: Clock::from_period_ps(cfg.pim_timing.t_ck_ps),
            dce_clk: Clock::from_period_ps(cfg.dce.period_ps()),
            sample_clk: Clock {
                period: sample_ticks.max(1),
                next: sample_ticks.max(1),
            },
            snap: Snapshot::default(),
            power_samples: Vec::new(),
            cfg,
        }
    }

    /// The memory mapping installed by this design.
    pub fn mapper(&self) -> &HetMap {
        &self.mapper
    }

    /// The CPU cluster.
    pub fn cluster(&self) -> &CpuCluster {
        &self.cluster
    }

    /// The DCE, when present.
    pub fn dce(&self) -> Option<&Dce> {
        self.dce.as_ref()
    }

    /// Mutable DCE access (for job submission).
    pub fn dce_mut(&mut self) -> Option<&mut Dce> {
        self.dce.as_mut()
    }

    /// DRAM-side controllers.
    pub fn dram_controllers(&self) -> &[MemController] {
        &self.dram
    }

    /// PIM-side controllers.
    pub fn pim_controllers(&self) -> &[MemController] {
        &self.pim
    }

    /// Power/activity samples collected so far.
    pub fn power_samples(&self) -> &[PowerSample] {
        &self.power_samples
    }

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> f64 {
        ticks_to_ns(self.t)
    }

    fn route(&mut self, space: MemSpace, channel: u32) -> &mut MemController {
        match space {
            MemSpace::Dram => &mut self.dram[channel as usize],
            MemSpace::Pim => &mut self.pim[channel as usize],
        }
    }

    fn drain_cluster_outbox(&mut self) {
        loop {
            let Some(front) = self.cluster.outbox_mut().front().copied() else {
                return;
            };
            let ctrl = self.route(front.space, front.req.addr.channel);
            if ctrl.can_accept(front.req.kind) {
                ctrl.enqueue(front.req).expect("capacity checked");
                self.cluster.outbox_mut().pop_front();
            } else {
                return;
            }
        }
    }

    fn drain_dce_outbox(&mut self) {
        let Some(dce) = &mut self.dce else { return };
        loop {
            let Some(front) = dce.outbox_mut().front().copied() else {
                return;
            };
            let ctrl = match front.space {
                MemSpace::Dram => &mut self.dram[front.req.addr.channel as usize],
                MemSpace::Pim => &mut self.pim[front.req.addr.channel as usize],
            };
            if ctrl.can_accept(front.req.kind) {
                ctrl.enqueue(front.req).expect("capacity checked");
                dce.outbox_mut().pop_front();
            } else {
                return;
            }
        }
    }

    fn tick_controllers(&mut self, space: MemSpace) {
        let ctrls = match space {
            MemSpace::Dram => &mut self.dram,
            MemSpace::Pim => &mut self.pim,
        };
        let mut completions = Vec::new();
        for c in ctrls.iter_mut() {
            c.tick();
            completions.extend(c.drain_completions());
        }
        for c in completions {
            if c.source.0 == DCE_SOURCE {
                if let Some(dce) = &mut self.dce {
                    dce.on_completion(c);
                }
            } else {
                self.cluster.on_completion(c);
            }
        }
    }

    /// Advance the simulation by one event (the earliest due clock edge).
    pub fn step(&mut self) {
        let mut next = self.cpu_clk.next.min(self.dram_clk.next).min(self.pim_clk.next);
        if self.dce.is_some() {
            next = next.min(self.dce_clk.next);
        }
        next = next.min(self.sample_clk.next);
        self.t = next;

        if self.cpu_clk.due(next) {
            self.cluster.tick();
            self.drain_cluster_outbox();
        }
        if self.dce.is_some() && self.dce_clk.due(next) {
            self.dce.as_mut().expect("checked").tick();
            self.drain_dce_outbox();
        }
        if self.dram_clk.due(next) {
            self.tick_controllers(MemSpace::Dram);
            // Controllers freed queue slots: top the queues back up.
            self.drain_cluster_outbox();
            self.drain_dce_outbox();
        }
        if self.pim_clk.due(next) {
            self.tick_controllers(MemSpace::Pim);
            self.drain_cluster_outbox();
            self.drain_dce_outbox();
        }
        if self.sample_clk.due(next) {
            self.sample();
        }
    }

    /// Run until `pred` returns true or `max_ns` elapses. Returns whether
    /// the predicate fired.
    pub fn run_until(&mut self, max_ns: f64, mut pred: impl FnMut(&System) -> bool) -> bool {
        let max_ticks = (max_ns * TICKS_PER_NS as f64) as u64;
        while self.t < max_ticks {
            if pred(self) {
                return true;
            }
            self.step();
        }
        pred(self)
    }

    fn totals(&self) -> Snapshot {
        let cs = self.cluster.core_stats();
        let mut s = Snapshot {
            t_ns: self.now_ns(),
            core_active: cs.iter().map(|c| c.busy_cycles).sum(),
            avx_instr: self.cluster.stats().retired_transfer,
            llc: self.cluster.llc().hits + self.cluster.llc().misses,
            ..Snapshot::default()
        };
        for c in self.dram.iter().chain(self.pim.iter()) {
            let st = c.stats();
            s.acts += st.activates;
            s.reads += st.reads;
            s.writes += st.writes;
            s.refreshes += st.refreshes;
        }
        if let Some(dce) = &self.dce {
            s.dce_lines = dce.stats().lines_done;
        }
        s
    }

    /// Activity since `snap`, as energy-model input.
    fn delta_counts(&self, snap: &Snapshot, now: &Snapshot) -> ActivityCounts {
        ActivityCounts {
            duration_ns: now.t_ns - snap.t_ns,
            cores: self.cfg.cpu.cores,
            core_active_cycles: now.core_active - snap.core_active,
            // AVX premium applied per transfer-loop instruction.
            avx_cycles: now.avx_instr - snap.avx_instr,
            llc_accesses: now.llc - snap.llc,
            ranks: self.cfg.dram_org.channels * self.cfg.dram_org.ranks
                + self.cfg.pim_org.channels * self.cfg.pim_org.ranks,
            dram_acts: now.acts - snap.acts,
            dram_reads: now.reads - snap.reads,
            dram_writes: now.writes - snap.writes,
            dram_refreshes: now.refreshes - snap.refreshes,
            dce_lines: now.dce_lines - snap.dce_lines,
            pimmmu_present: self.dce.is_some(),
        }
    }

    fn sample(&mut self) {
        self.cluster.sample_active_cores();
        for c in self.dram.iter_mut().chain(self.pim.iter_mut()) {
            let clock = c.clock();
            c.stats_mut().sample_window(clock);
        }
        let now = self.totals();
        let counts = self.delta_counts(&self.snap.clone(), &now);
        let watts = counts.avg_power_w(&self.cfg.power);
        let active = self
            .cluster
            .stats()
            .active_samples
            .last()
            .map(|&(_, a)| a)
            .unwrap_or(0);
        self.power_samples.push(PowerSample {
            t_ns: now.t_ns,
            active_cores: active,
            watts,
        });
        self.snap = now;
    }

    /// Close the trailing (partial) sampling window so stats/time-series
    /// include everything up to the current cycle.
    pub fn finish_sampling(&mut self) {
        self.sample();
    }

    /// Total activity from simulation start (for whole-run energy).
    pub fn total_activity(&self) -> ActivityCounts {
        self.delta_counts(&Snapshot::default(), &self.totals())
    }

    /// Aggregate data-bus utilization over one controller group.
    pub fn bus_utilization(&self, space: MemSpace) -> f64 {
        let ctrls = match space {
            MemSpace::Dram => &self.dram,
            MemSpace::Pim => &self.pim,
        };
        let n = ctrls.len().max(1) as f64;
        ctrls.iter().map(|c| c.stats().bus_utilization()).sum::<f64>() / n
    }

    /// Whether all controllers are fully drained.
    pub fn memory_idle(&self) -> bool {
        self.dram.iter().chain(self.pim.iter()).all(|c| c.idle())
    }

    /// Mutable access to the cluster (for wiring additional threads'
    /// completion checks in tests).
    pub fn cluster_mut(&mut self) -> &mut CpuCluster {
        &mut self.cluster
    }

    /// Sum of written bytes on each PIM channel per sampling window.
    pub fn pim_channel_write_windows(&self) -> Vec<Vec<u64>> {
        self.pim
            .iter()
            .map(|c| c.stats().windows.iter().map(|w| w.bytes_written).collect())
            .collect()
    }

    /// Read+written bytes on each DRAM channel per sampling window.
    pub fn dram_channel_windows(&self) -> Vec<Vec<u64>> {
        self.dram
            .iter()
            .map(|c| {
                c.stats()
                    .windows
                    .iter()
                    .map(|w| w.bytes_read + w.bytes_written)
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DesignPoint;

    #[test]
    fn empty_system_advances_time() {
        let cfg = SystemConfig::table1(DesignPoint::Baseline);
        let mut sys = System::new(cfg, vec![]);
        let done = sys.run_until(10_000.0, |_| false);
        assert!(!done);
        assert!(sys.now_ns() >= 10_000.0 - 1.0);
        assert!(sys.memory_idle());
    }

    #[test]
    fn dce_present_only_when_designed() {
        let sys = System::new(SystemConfig::table1(DesignPoint::Baseline), vec![]);
        assert!(sys.dce().is_none());
        let sys = System::new(SystemConfig::table1(DesignPoint::BaseDHP), vec![]);
        assert!(sys.dce().is_some());
    }

    #[test]
    fn sampling_produces_series() {
        let mut cfg = SystemConfig::table1(DesignPoint::Baseline);
        cfg.sample_ns = 1000.0;
        let mut sys = System::new(cfg, vec![]);
        sys.run_until(10_500.0, |_| false);
        assert!(sys.power_samples().len() >= 10);
        // Idle system: only the static floor, zero active cores.
        let s = sys.power_samples().last().unwrap();
        assert_eq!(s.active_cores, 0);
        assert!(s.watts > 30.0 && s.watts < 65.0, "{}", s.watts);
    }
}
