//! A small time queue: the next-event scheduler's ordered agenda.
//!
//! `TimeQ` is a lazy binary min-heap of `(tick, slot)` entries. "Lazy"
//! because entries are never removed in place: when a domain's next edge
//! moves (it fires, parks, or is re-armed at a different tick), the old
//! entry is simply left behind and becomes *stale*. The owner
//! ([`ClockDomains`](crate::engine::ClockDomains)) knows each slot's true
//! next edge and prunes stale entries from the top after every mutation,
//! so `peek` always reflects a live event without `TimeQ` itself needing
//! any validity knowledge.
//!
//! Ties order by slot index, keeping coincident edges deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Min-heap of `(tick, slot)` event entries.
#[derive(Debug, Clone, Default)]
pub struct TimeQ {
    heap: BinaryHeap<Reverse<(u64, usize)>>,
}

impl TimeQ {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `slot` at `tick`. Duplicates are allowed; the owner
    /// prunes whatever turns out to be stale.
    #[inline]
    pub fn push(&mut self, tick: u64, slot: usize) {
        self.heap.push(Reverse((tick, slot)));
    }

    /// The earliest entry, if any.
    #[inline]
    pub fn peek(&self) -> Option<(u64, usize)> {
        self.heap.peek().map(|Reverse(e)| *e)
    }

    /// Remove and return the earliest entry.
    #[inline]
    pub fn pop(&mut self) -> Option<(u64, usize)> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Number of entries, stale ones included.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all entries.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Pop entries from the top while `stale` says they no longer match
    /// the owner's idea of the slot's next edge. Returns the first live
    /// entry without removing it.
    #[inline]
    pub fn prune<F: Fn(u64, usize) -> bool>(&mut self, stale: F) -> Option<(u64, usize)> {
        while let Some(&Reverse((tick, slot))) = self.heap.peek() {
            if stale(tick, slot) {
                self.heap.pop();
            } else {
                return Some((tick, slot));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_tick_then_slot() {
        let mut q = TimeQ::new();
        q.push(30, 2);
        q.push(10, 1);
        q.push(10, 0);
        q.push(20, 3);
        assert_eq!(q.pop(), Some((10, 0)));
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 3)));
        assert_eq!(q.pop(), Some((30, 2)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = TimeQ::new();
        q.push(5, 0);
        assert_eq!(q.peek(), Some((5, 0)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((5, 0)));
    }

    #[test]
    fn prune_discards_stale_entries() {
        let mut q = TimeQ::new();
        // Slot 0 was rescheduled from 10 to 40: the entry at 10 is stale.
        q.push(10, 0);
        q.push(40, 0);
        q.push(25, 1);
        let live = q.prune(|tick, slot| slot == 0 && tick != 40);
        assert_eq!(live, Some((25, 1)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn duplicate_entries_are_tolerated() {
        let mut q = TimeQ::new();
        q.push(10, 0);
        q.push(10, 0);
        assert_eq!(q.pop(), Some((10, 0)));
        assert_eq!(q.pop(), Some((10, 0)));
    }
}
