//! Transfer experiment runner: the common harness behind Fig. 13/14/15/16.

use crate::config::{SystemConfig, ThreadAssignment};
use crate::result::TransferResult;
use crate::system::System;
use pim_cpu::streams::{
    ContenderStream, CopyChunk, Intensity, MemcpyStream, SpinStream, XferDir, XferStream,
};
use pim_cpu::{Thread, ThreadKind};
use pim_mapping::{MemSpace, PhysAddr, PimAddrSpace};
use pim_mmu::{PimMmuOp, XferKind};

/// Base physical address of the host-side staging buffer (1 GiB — clear
/// of anything else the traces touch).
pub const HOST_BUFFER_BASE: u64 = 1 << 30;

/// Co-located contender workloads (Fig. 13).
#[derive(Debug, Clone, Copy)]
pub enum ContenderSpec {
    /// `n` spin-lock-like compute-bound threads.
    Spin(u32),
    /// `n` memory-intensive threads at the given intensity.
    Memory(u32, Intensity),
}

/// A DRAM↔PIM transfer experiment.
#[derive(Debug, Clone)]
pub struct TransferSpec {
    /// Direction.
    pub kind: XferKind,
    /// Total payload bytes (split evenly over `n_cores`).
    pub total_bytes: u64,
    /// Number of PIM cores targeted.
    pub n_cores: u32,
    /// Co-located contenders.
    pub contenders: Vec<ContenderSpec>,
    /// Simulation cap in nanoseconds.
    pub max_ns: f64,
}

impl TransferSpec {
    /// A plain transfer over all 512 Table-I cores.
    pub fn simple(kind: XferKind, total_bytes: u64) -> Self {
        TransferSpec {
            kind,
            total_bytes,
            n_cores: 512,
            contenders: Vec::new(),
            max_ns: 2e9,
        }
    }

    fn size_per_core(&self) -> u64 {
        let raw = self.total_bytes / self.n_cores as u64;
        assert!(
            raw >= 64 && raw.is_multiple_of(64),
            "per-core size {raw} must be a nonzero multiple of 64 B"
        );
        raw
    }

    /// The per-core `(dram_addr, core)` entries of the op.
    pub fn entries(&self) -> Vec<(PhysAddr, u32)> {
        let size = self.size_per_core();
        (0..self.n_cores)
            .map(|i| (PhysAddr(HOST_BUFFER_BASE + i as u64 * size), i))
            .collect()
    }
}

fn contender_threads(specs: &[ContenderSpec]) -> Vec<Thread> {
    let mut threads = Vec::new();
    for spec in specs {
        match *spec {
            ContenderSpec::Spin(n) => {
                for _ in 0..n {
                    threads.push(Thread::new(Box::new(SpinStream), ThreadKind::Compute));
                }
            }
            ContenderSpec::Memory(n, intensity) => {
                for i in 0..n {
                    // Roam the first 8 GiB of DRAM: a working set far
                    // beyond the LLC that also collides with the transfer
                    // staging buffer's channel under either mapping — the
                    // direct bandwidth interference of Fig. 13(b).
                    threads.push(Thread::new(
                        Box::new(ContenderStream::new(
                            PhysAddr(0),
                            8 << 30,
                            intensity,
                            0x9E3779B97F4A7C15u64.wrapping_mul(i as u64 + 1),
                        )),
                        ThreadKind::Memory,
                    ));
                }
            }
        }
    }
    threads
}

/// Build the baseline's software copy threads (§V: 8 threads, each
/// owning a block of PIM cores).
fn sw_transfer_threads(
    cfg: &SystemConfig,
    spec: &TransferSpec,
    space: &PimAddrSpace,
) -> Vec<Thread> {
    let entries = spec.entries();
    let size = spec.size_per_core();
    let n = cfg.sw_threads.max(1);
    let dir = match spec.kind {
        XferKind::DramToPim => XferDir::DramToPim,
        XferKind::PimToDram => XferDir::PimToDram,
    };
    let mut per_thread: Vec<Vec<CopyChunk>> = vec![Vec::new(); n];
    for (idx, &(dram_addr, core)) in entries.iter().enumerate() {
        let t = match cfg.assignment {
            // Contiguous blocks of cores per thread (one rank each with 8
            // threads on the Table-I machine).
            ThreadAssignment::RankBlocked => idx * n / entries.len(),
            ThreadAssignment::Interleaved => idx % n,
        };
        let pim_addr = space.core_phys(core, 0);
        let (src, dst) = match spec.kind {
            XferKind::DramToPim => (dram_addr, pim_addr),
            XferKind::PimToDram => (pim_addr, dram_addr),
        };
        per_thread[t].push(CopyChunk {
            src,
            dst,
            bytes: size,
        });
    }
    per_thread
        .into_iter()
        .filter(|chunks| !chunks.is_empty())
        .map(|chunks| {
            Thread::new(
                Box::new(XferStream::new(
                    dir,
                    chunks,
                    XferStream::DEFAULT_TRANSPOSE_BUBBLES,
                )),
                ThreadKind::Transfer,
            )
        })
        .collect()
}

fn collect_result(sys: &mut System, design: &str, bytes: u64, elapsed_ns: f64) -> TransferResult {
    sys.finish_sampling();
    let activity = sys.total_activity();
    TransferResult {
        design: design.to_string(),
        bytes,
        elapsed_ns,
        energy: activity.energy(&sys.cfg.power),
        power_samples: sys.power_samples().to_vec(),
        pim_channel_windows: sys.pim_channel_write_windows(),
        dram_channel_windows: sys.dram_channel_windows(),
        pim_bus_utilization: sys.bus_utilization(MemSpace::Pim),
        dram_bus_utilization: sys.bus_utilization(MemSpace::Dram),
    }
}

/// Run a DRAM↔PIM transfer under `cfg.design` and return the measured
/// result.
///
/// # Panics
///
/// Panics if the transfer does not complete within `spec.max_ns` (a
/// deadlock in the model — never expected).
pub fn run_transfer(cfg: &SystemConfig, spec: &TransferSpec) -> TransferResult {
    let mapper = cfg.mapper();
    let space = PimAddrSpace::new(mapper.pim_base(), cfg.pim_org);
    let mut threads = Vec::new();
    let design = cfg.design;
    let mut n_transfer_threads = 0;
    if !design.uses_dce() {
        let tt = sw_transfer_threads(cfg, spec, &space);
        n_transfer_threads = tt.len();
        threads.extend(tt);
    }
    threads.extend(contender_threads(&spec.contenders));

    let mut sys = System::new(cfg.clone(), threads);
    if design.uses_dce() {
        let op = match spec.kind {
            XferKind::DramToPim => PimMmuOp::to_pim(spec.entries(), spec.size_per_core(), 0),
            XferKind::PimToDram => PimMmuOp::from_pim(spec.entries(), spec.size_per_core(), 0),
        };
        sys.dce_mut()
            .expect("design uses a DCE")
            .submit(op, design.dce_mode())
            .expect("op validated");
    }

    let finished = if design.uses_dce() {
        sys.run_until(spec.max_ns, |s| {
            s.dce().expect("present").completed_at().is_some()
        })
    } else {
        let last = n_transfer_threads;
        sys.run_until(spec.max_ns, move |s| {
            (0..last).all(|t| s.cluster().thread_finished(t))
        })
    };
    assert!(
        finished,
        "{} transfer of {} bytes did not finish within {} ns",
        design.label(),
        spec.total_bytes,
        spec.max_ns
    );

    let mut elapsed_ns = if design.uses_dce() {
        // DCE cycles -> ns, plus the driver round trip (§IV-B).
        let cycles = sys.dce().expect("present").completed_at().expect("done");
        let engine_ns = cycles as f64 * sys.cfg.dce.period_ps() as f64 / 1000.0;
        engine_ns + sys.cfg.driver.round_trip_ns(spec.n_cores as usize)
    } else {
        let cpu_period_ns = sys.cfg.cpu.period_ps() as f64 / 1000.0;
        (0..n_transfer_threads)
            .map(|t| sys.cluster().thread_finished_at(t).expect("finished"))
            .max()
            .unwrap_or(0) as f64
            * cpu_period_ns
    };
    if elapsed_ns <= 0.0 {
        elapsed_ns = sys.now_ns();
    }
    collect_result(&mut sys, design.label(), spec.total_bytes, elapsed_ns)
}

/// Run the AVX-stream `memcpy` microbenchmark (Fig. 14): multi-threaded
/// DRAM→DRAM copy. The design point only matters through its memory
/// mapping (locality-centric baseline vs. HetMap's MLP-centric DRAM
/// side).
pub fn run_memcpy(cfg: &SystemConfig, bytes: u64, max_ns: f64) -> TransferResult {
    let n = cfg.sw_threads.max(1);
    let per_thread = (bytes / n as u64) & !63;
    // Source and destination sit a couple of GiB apart — within the same
    // locality-mapped channel on server-sized channels, exactly the
    // single-channel pile-up the baseline BIOS inflicts on memcpy.
    let dst_base = HOST_BUFFER_BASE + (2u64 << 30);
    let threads: Vec<Thread> = (0..n as u64)
        .map(|t| {
            Thread::new(
                Box::new(MemcpyStream::new(
                    PhysAddr(HOST_BUFFER_BASE + t * per_thread),
                    PhysAddr(dst_base + t * per_thread),
                    per_thread,
                )),
                ThreadKind::Transfer,
            )
        })
        .collect();
    let n_threads = threads.len();
    let mut sys = System::new(cfg.clone(), threads);
    let finished = sys.run_until(max_ns, move |s| {
        (0..n_threads).all(|t| s.cluster().thread_finished(t))
    });
    assert!(
        finished,
        "memcpy of {bytes} bytes did not finish in {max_ns} ns"
    );
    let cpu_period_ns = sys.cfg.cpu.period_ps() as f64 / 1000.0;
    let elapsed_ns = (0..n_threads)
        .map(|t| sys.cluster().thread_finished_at(t).expect("finished"))
        .max()
        .unwrap_or(0) as f64
        * cpu_period_ns;
    let label = sys.cfg.design.label();
    collect_result(&mut sys, label, bytes, elapsed_ns.max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DesignPoint;

    fn quick_cfg(design: DesignPoint) -> SystemConfig {
        let mut cfg = SystemConfig::table1(design);
        cfg.sample_ns = 50_000.0;
        cfg
    }

    #[test]
    fn baseline_transfer_completes_and_moves_all_bytes() {
        let cfg = quick_cfg(DesignPoint::Baseline);
        let spec = TransferSpec {
            n_cores: 64,
            ..TransferSpec::simple(XferKind::DramToPim, 1 << 20)
        };
        let r = run_transfer(&cfg, &spec);
        assert_eq!(r.bytes, 1 << 20);
        assert!(r.elapsed_ns > 0.0);
        assert!(r.throughput_gbps() > 0.5, "{}", r.throughput_gbps());
        // All lines reached the PIM side.
        assert!(r.pim_bus_utilization > 0.0);
    }

    #[test]
    fn pim_mmu_beats_baseline_on_dram_to_pim() {
        // All 512 cores: PIM core ids are channel-major, so a 128-core
        // subset would confine PIM-MS to a single channel.
        let base = run_transfer(
            &quick_cfg(DesignPoint::Baseline),
            &TransferSpec::simple(XferKind::DramToPim, 4 << 20),
        );
        let full = run_transfer(
            &quick_cfg(DesignPoint::BaseDHP),
            &TransferSpec::simple(XferKind::DramToPim, 4 << 20),
        );
        let speedup = base.elapsed_ns / full.elapsed_ns;
        assert!(
            speedup > 1.5,
            "PIM-MMU speedup {speedup:.2}x too small (base {:.2} GB/s vs full {:.2} GB/s)",
            base.throughput_gbps(),
            full.throughput_gbps()
        );
    }

    #[test]
    fn memcpy_hetmap_beats_locality() {
        let base = run_memcpy(&quick_cfg(DesignPoint::Baseline), 2 << 20, 1e9);
        let het = run_memcpy(&quick_cfg(DesignPoint::BaseDHP), 2 << 20, 1e9);
        let ratio = het.throughput_gbps() / base.throughput_gbps();
        assert!(ratio > 2.0, "HetMap memcpy gain {ratio:.2}x too small");
    }
}
