//! Mutation-style tests for the scheduler shadow checker: the
//! sanitizer must stay silent on conforming runs and must trip on each
//! injected fault class (a checker that never fires proves nothing).
#![cfg(feature = "sanitize")]

use pim_sim::{run_memcpy, DesignPoint, SanitizeKind, System, SystemConfig};

fn empty_system() -> System {
    // BaseDHP instantiates the full machine (DCE + both controller
    // groups); no threads means the only standing work is DRAM/PIM
    // refresh — exactly the horizon the injections corrupt.
    System::new(SystemConfig::table1(DesignPoint::BaseDHP), vec![])
}

#[test]
fn clean_idle_run_is_silent() {
    let mut sys = empty_system();
    sys.sanitize_record_only();
    sys.run_until(500_000.0, |_| false);
    assert!(
        sys.sanitize_violations().is_empty(),
        "idle run must be violation-free: {:?}",
        sys.sanitize_violations()
    );
}

#[test]
fn clean_memcpy_run_is_silent() {
    // Real traffic through every component, with the checker in panic
    // mode: any invariant breach fails the test by panicking.
    let cfg = SystemConfig::table1(DesignPoint::BaseDHP);
    let r = run_memcpy(&cfg, 1 << 20, 1e9);
    assert_eq!(r.bytes, 1 << 20);
}

#[test]
fn stale_horizon_injection_trips() {
    let mut sys = empty_system();
    sys.sanitize_record_only();
    // Reach steady state, then re-aim the DRAM domain past its true
    // refresh horizon, as a buggy `apply_horizons` would.
    sys.run_until(100_000.0, |_| false);
    sys.sanitize_inject_stale_horizon();
    for _ in 0..64 {
        if !sys.sanitize_violations().is_empty() {
            break;
        }
        sys.step();
    }
    let vs = sys.sanitize_violations();
    assert!(
        vs.iter()
            .any(|v| v.kind == SanitizeKind::StaleHorizon && v.domain == "dram"),
        "overshot DRAM wake must be flagged: {vs:?}"
    );
}

#[test]
fn lost_wakeup_injection_trips() {
    let mut sys = empty_system();
    sys.sanitize_record_only();
    sys.run_until(100_000.0, |_| false);
    sys.sanitize_inject_lost_wakeup();
    for _ in 0..64 {
        if !sys.sanitize_violations().is_empty() {
            break;
        }
        sys.step();
    }
    let vs = sys.sanitize_violations();
    assert!(
        vs.iter()
            .any(|v| v.kind == SanitizeKind::LostWakeup && v.domain == "dram"),
        "parked-with-work DRAM domain must be flagged: {vs:?}"
    );
}

#[test]
#[should_panic(expected = "LostWakeup")]
fn panic_mode_aborts_on_first_finding() {
    let mut sys = empty_system();
    sys.run_until(100_000.0, |_| false);
    sys.sanitize_inject_lost_wakeup();
    for _ in 0..64 {
        sys.step();
    }
}
