//! The span joiner + stage-waterfall engine: folds the flight
//! recorder's raw [`SpanEvent`] stream into per-job *stage durations*
//! that sum exactly to the job's end-to-end latency.
//!
//! Seven stages partition a job's lifetime (see [`Stage`]). The joiner
//! replays the recorder in record order, reassembling each chunk's
//! lifecycle through the same joins the Perfetto exporter uses —
//! `(shard, seq)` → owner from the dispatch-pick, doorbells cover the
//! picks staged since the previous doorbell on that shard, an
//! interrupt covers every retirement surfaced on that shard since the
//! previous interrupt, and the k-th recall of a job pairs with its
//! k-th resume. Per job, the chunk intervals become a delta sweep:
//! between any two adjacent boundary timestamps exactly one stage is
//! charged (the busiest active chunk state wins, device service
//! outranking ring residency outranking host-side staging), so the
//! stage durations *partition* `[arrival, complete]` by construction —
//! conservation to the nanosecond is structural, not a rounding
//! accident.
//!
//! Truncated rings degrade gracefully: a job missing its arrival or
//! completion endpoint, or with any chunk interval left open by a
//! dropped span, is reported as an [`incomplete`](JobWaterfall::complete)
//! record with zeroed stages — counted, never panicking, and never
//! polluting the aggregates.

use std::collections::BTreeMap;

use crate::event::{SpanEvent, SpanKind, NO_JOB, NO_TENANT};
use crate::hist::LogHistogram;
use crate::recorder::FlightRecorder;

/// One of the seven disjoint stages a completed job's end-to-end
/// latency decomposes into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Stage {
    /// No chunk of the job is anywhere in the pipeline: the job sits in
    /// its tenant's submission queue waiting for the policy to pick it.
    QueueWait = 0,
    /// A chunk is staged on a submission ring but its doorbell has not
    /// rung yet (dispatch-pick → doorbell MMIO).
    Dispatch = 1,
    /// A chunk is published but the engine has not installed it
    /// (doorbell → device-start): driver ring residency.
    Ring = 2,
    /// The engine is actively moving the job's bytes
    /// (device-start → retire/suspend).
    DeviceService = 3,
    /// A preempted remainder is parked waiting to be re-dispatched
    /// (recall interrupt → resume pick).
    Suspended = 4,
    /// A chunk has retired on the device but its completion interrupt
    /// has not fired (retire/suspend → interrupt): coalescing delay.
    Coalescing = 5,
    /// Everything retired and the final interrupt fired, but the
    /// completion record lands later (driver round-trip / interrupt
    /// service tail).
    Completion = 6,
}

/// Number of stages (the width of every per-job stage vector).
pub const STAGE_COUNT: usize = 7;

impl Stage {
    /// Every stage, in lifecycle order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::QueueWait,
        Stage::Dispatch,
        Stage::Ring,
        Stage::DeviceService,
        Stage::Suspended,
        Stage::Coalescing,
        Stage::Completion,
    ];

    /// When several chunks of one job are simultaneously in different
    /// states (deep rings, multi-shard jobs), the segment is charged to
    /// the *most pipeline-advanced* active state — the job is making
    /// device progress even if another chunk is queued behind a
    /// doorbell.
    const PRIORITY: [Stage; 5] = [
        Stage::DeviceService,
        Stage::Ring,
        Stage::Dispatch,
        Stage::Coalescing,
        Stage::Suspended,
    ];

    /// Stable label (report tables, Perfetto args).
    pub fn name(&self) -> &'static str {
        match self {
            Stage::QueueWait => "queue-wait",
            Stage::Dispatch => "dispatch",
            Stage::Ring => "ring",
            Stage::DeviceService => "device-service",
            Stage::Suspended => "suspended",
            Stage::Coalescing => "coalescing",
            Stage::Completion => "completion",
        }
    }
}

/// One job's latency waterfall: where every nanosecond between arrival
/// and completion went.
#[derive(Debug, Clone)]
pub struct JobWaterfall {
    /// Job id.
    pub job: u64,
    /// Owning tenant.
    pub tenant: u32,
    /// Shard whose interrupt announced the completion.
    pub shard: u32,
    /// Payload bytes.
    pub bytes: u64,
    /// Arrival timestamp, ns.
    pub arrival_ns: f64,
    /// Completion timestamp, ns.
    pub complete_ns: f64,
    /// Nanoseconds attributed to each [`Stage`] (indexed by
    /// `Stage as usize`); all zero when `!complete`.
    pub stages: [f64; STAGE_COUNT],
    /// Chunk dispatches observed (including resumes).
    pub chunks: u32,
    /// Mid-transfer preemptions (recalls) observed.
    pub preemptions: u32,
    /// Whether the ring held every span needed to attribute the job.
    /// `false` means some boundary was dropped (or the run was
    /// truncated): endpoints may be zero and `stages` is all-zero.
    pub complete: bool,
}

impl JobWaterfall {
    /// End-to-end latency (0 for incomplete records).
    pub fn e2e_ns(&self) -> f64 {
        if self.complete {
            self.complete_ns - self.arrival_ns
        } else {
            0.0
        }
    }

    /// The stage holding the largest share of this job's latency.
    pub fn dominant_stage(&self) -> Stage {
        let mut best = Stage::QueueWait;
        for s in Stage::ALL {
            if self.stages[s as usize] > self.stages[best as usize] {
                best = s;
            }
        }
        best
    }
}

/// Tail attribution for one shard: which stage dominates the slowest
/// decile of jobs completing through it.
#[derive(Debug, Clone)]
pub struct TailAttribution {
    /// Completing shard.
    pub shard: u32,
    /// Jobs in the slowest decile (≥ 1 when the shard completed any).
    pub jobs: usize,
    /// e2e latency of the fastest job *in* the decile (the decile's
    /// entry threshold), ns.
    pub threshold_ns: f64,
    /// Mean e2e latency across the decile, ns.
    pub mean_e2e_ns: f64,
    /// The stage with the largest summed share across the decile.
    pub stage: Stage,
    /// That stage's share of the decile's total latency, in `[0, 1]`.
    pub share: f64,
}

/// A chunk's reassembled lifecycle boundaries (all `None` until the
/// matching span arrives).
#[derive(Debug, Clone, Default)]
struct ChunkBuild {
    seq: u64,
    shard: u32,
    pick_ns: f64,
    doorbell_ns: Option<f64>,
    start_ns: Option<f64>,
    stop_ns: Option<f64>,
    interrupt_ns: Option<f64>,
}

#[derive(Debug, Clone, Default)]
struct JobBuild {
    tenant: u32,
    bytes: u64,
    arrival_ns: Option<f64>,
    complete: Option<(f64, u32)>,
    chunks: Vec<ChunkBuild>,
    /// Recall timestamps awaiting their paired resume (FIFO: the k-th
    /// recall of a job pairs with its k-th resume).
    open_recalls: Vec<f64>,
    /// Closed suspended-residency intervals (recall → resume pick).
    suspended: Vec<(f64, f64)>,
    preemptions: u32,
}

impl JobBuild {
    fn joined(&self) -> bool {
        self.arrival_ns.is_some()
            && self.complete.is_some()
            && self.open_recalls.is_empty()
            && !self.chunks.is_empty()
            && self.chunks.iter().all(|c| {
                c.doorbell_ns.is_some()
                    && c.start_ns.is_some()
                    && c.stop_ns.is_some()
                    && c.interrupt_ns.is_some()
            })
    }
}

/// The folded attribution of one recorded run: per-job waterfalls,
/// per-tenant × per-stage streaming histograms, and stage totals.
#[derive(Debug, Clone)]
pub struct Attribution {
    /// Per-job waterfalls, sorted by job id (deterministic output
    /// order regardless of join-table iteration).
    pub jobs: Vec<JobWaterfall>,
    /// Jobs whose spans could not be fully joined (dropped or
    /// truncated); also counted inside [`jobs`](Self::jobs) as
    /// `!complete` records when at least their identity survived.
    pub incomplete: u64,
    /// Device-side events whose `(shard, seq)` owner pick was dropped
    /// from the ring — ignored, but counted.
    pub unowned_device_events: u64,
    /// Whether the source ring reported dropped spans (set by
    /// [`from_recorder`](Self::from_recorder)).
    pub degraded: bool,
    /// Per-tenant, per-stage latency histograms over complete jobs.
    per_tenant: Vec<[LogHistogram; STAGE_COUNT]>,
    /// Summed ns per stage over complete jobs.
    totals: [f64; STAGE_COUNT],
}

impl Attribution {
    /// Fold a span stream (in record order) into an attribution.
    pub fn from_events<'a>(events: impl Iterator<Item = &'a SpanEvent>) -> Self {
        let mut owners: BTreeMap<(u32, u64), u64> = BTreeMap::new();
        let mut builds: BTreeMap<u64, JobBuild> = BTreeMap::new();
        // Per shard: (job, chunk index) staged since the last doorbell.
        let mut pending_doorbell: BTreeMap<u32, Vec<(u64, usize)>> = BTreeMap::new();
        // Per shard: (job, chunk index) retired since the last interrupt.
        let mut pending_interrupt: BTreeMap<u32, Vec<(u64, usize)>> = BTreeMap::new();
        let mut unowned = 0u64;

        for ev in events {
            match ev.kind {
                SpanKind::Arrival => {
                    let b = builds.entry(ev.job).or_default();
                    b.tenant = ev.tenant;
                    b.bytes = ev.bytes;
                    b.arrival_ns = Some(ev.t_ns);
                }
                SpanKind::Enqueue => {} // shares the arrival timestamp
                SpanKind::DispatchPick => {
                    if ev.job == NO_JOB {
                        continue;
                    }
                    owners.insert((ev.shard, ev.seq), ev.job);
                    let b = builds.entry(ev.job).or_default();
                    if ev.tenant != NO_TENANT {
                        b.tenant = ev.tenant;
                    }
                    let idx = b.chunks.len();
                    b.chunks.push(ChunkBuild {
                        seq: ev.seq,
                        shard: ev.shard,
                        pick_ns: ev.t_ns,
                        ..ChunkBuild::default()
                    });
                    pending_doorbell
                        .entry(ev.shard)
                        .or_default()
                        .push((ev.job, idx));
                }
                SpanKind::Resume => {
                    // Recorded right after its DispatchPick twin: close
                    // the oldest open recall at the resume-pick time.
                    if let Some(b) = builds.get_mut(&ev.job) {
                        if !b.open_recalls.is_empty() {
                            let recall_ns = b.open_recalls.remove(0);
                            b.suspended.push((recall_ns, ev.t_ns));
                        }
                    }
                }
                SpanKind::Doorbell => {
                    for (job, idx) in pending_doorbell.entry(ev.shard).or_default().drain(..) {
                        if let Some(c) = builds.get_mut(&job).and_then(|b| b.chunks.get_mut(idx)) {
                            c.doorbell_ns = Some(ev.t_ns);
                        }
                    }
                }
                SpanKind::DeviceStart => {
                    match owners
                        .get(&(ev.shard, ev.seq))
                        .and_then(|j| builds.get_mut(j))
                    {
                        Some(b) => {
                            // Route by (shard, seq) to the job's latest
                            // still-open chunk interval.
                            if let Some(c) = b.chunks.iter_mut().rev().find(|c| {
                                c.seq == ev.seq && c.shard == ev.shard && c.start_ns.is_none()
                            }) {
                                c.start_ns = Some(ev.t_ns);
                            }
                        }
                        None => unowned += 1,
                    }
                }
                SpanKind::SuspendRequest => {} // the drain is still device service
                SpanKind::Suspend | SpanKind::Retire => {
                    let owner = owners.get(&(ev.shard, ev.seq)).copied();
                    match owner.and_then(|j| builds.get_mut(&j).map(|b| (j, b))) {
                        Some((job, b)) => {
                            if let Some(idx) = b.chunks.iter().position(|c| {
                                c.seq == ev.seq && c.shard == ev.shard && c.stop_ns.is_none()
                            }) {
                                b.chunks[idx].stop_ns = Some(ev.t_ns);
                                pending_interrupt
                                    .entry(ev.shard)
                                    .or_default()
                                    .push((job, idx));
                            }
                        }
                        None => unowned += 1,
                    }
                }
                SpanKind::Interrupt => {
                    for (job, idx) in pending_interrupt.entry(ev.shard).or_default().drain(..) {
                        if let Some(c) = builds.get_mut(&job).and_then(|b| b.chunks.get_mut(idx)) {
                            c.interrupt_ns = Some(ev.t_ns);
                        }
                    }
                }
                SpanKind::Recall => {
                    if let Some(b) = builds.get_mut(&ev.job) {
                        b.open_recalls.push(ev.t_ns);
                        b.preemptions += 1;
                    }
                }
                SpanKind::Complete => {
                    let b = builds.entry(ev.job).or_default();
                    b.tenant = ev.tenant;
                    if ev.bytes > 0 {
                        b.bytes = ev.bytes;
                    }
                    b.complete = Some((ev.t_ns, ev.shard));
                }
            }
        }

        let mut job_ids: Vec<u64> = builds.keys().copied().collect();
        job_ids.sort_unstable();
        let max_tenant = builds
            .values()
            .filter(|b| b.tenant != NO_TENANT)
            .map(|b| b.tenant as usize + 1)
            .max()
            .unwrap_or(0);
        let mut per_tenant: Vec<[LogHistogram; STAGE_COUNT]> = (0..max_tenant)
            .map(|_| std::array::from_fn(|_| LogHistogram::new()))
            .collect();
        let mut totals = [0.0; STAGE_COUNT];
        let mut jobs = Vec::with_capacity(job_ids.len());
        let mut incomplete = 0u64;

        for id in job_ids {
            let b = &builds[&id];
            if !b.joined() {
                incomplete += 1;
                jobs.push(JobWaterfall {
                    job: id,
                    tenant: b.tenant,
                    shard: b.complete.map(|(_, s)| s).unwrap_or(u32::MAX),
                    bytes: b.bytes,
                    arrival_ns: b.arrival_ns.unwrap_or(0.0),
                    complete_ns: b.complete.map(|(t, _)| t).unwrap_or(0.0),
                    stages: [0.0; STAGE_COUNT],
                    chunks: b.chunks.len() as u32,
                    preemptions: b.preemptions,
                    complete: false,
                });
                continue;
            }
            let (complete_ns, shard) = b.complete.expect("joined");
            let arrival_ns = b.arrival_ns.expect("joined");
            let stages = sweep(b, arrival_ns, complete_ns);
            if b.tenant != NO_TENANT {
                let hists = &mut per_tenant[b.tenant as usize];
                for s in Stage::ALL {
                    hists[s as usize].record(stages[s as usize]);
                }
            }
            for s in 0..STAGE_COUNT {
                totals[s] += stages[s];
            }
            jobs.push(JobWaterfall {
                job: id,
                tenant: b.tenant,
                shard,
                bytes: b.bytes,
                arrival_ns,
                complete_ns,
                stages,
                chunks: b.chunks.len() as u32,
                preemptions: b.preemptions,
                complete: true,
            });
        }

        Attribution {
            jobs,
            incomplete,
            unowned_device_events: unowned,
            degraded: false,
            per_tenant,
            totals,
        }
    }

    /// Fold a flight recorder, carrying its drop accounting into
    /// [`degraded`](Self::degraded).
    pub fn from_recorder(rec: &FlightRecorder) -> Self {
        let mut a = Attribution::from_events(rec.iter());
        a.degraded = rec.dropped() > 0;
        a
    }

    /// Number of tenants seen.
    pub fn tenants(&self) -> usize {
        self.per_tenant.len()
    }

    /// The streaming histogram of `stage` durations for `tenant`
    /// (complete jobs only).
    pub fn stage_hist(&self, tenant: usize, stage: Stage) -> &LogHistogram {
        &self.per_tenant[tenant][stage as usize]
    }

    /// Summed nanoseconds per stage over all complete jobs.
    pub fn totals(&self) -> &[f64; STAGE_COUNT] {
        &self.totals
    }

    /// `stage`'s share of total attributed time, in `[0, 1]`.
    pub fn share(&self, stage: Stage) -> f64 {
        let total: f64 = self.totals.iter().sum();
        if total <= 0.0 {
            0.0
        } else {
            self.totals[stage as usize] / total
        }
    }

    /// The stage holding the most total time (None when nothing was
    /// attributed).
    pub fn dominant_stage(&self) -> Option<Stage> {
        if self.totals.iter().all(|&t| t <= 0.0) {
            return None;
        }
        let mut best = Stage::QueueWait;
        for s in Stage::ALL {
            if self.totals[s as usize] > self.totals[best as usize] {
                best = s;
            }
        }
        Some(best)
    }

    /// Complete jobs folded.
    pub fn complete_jobs(&self) -> usize {
        self.jobs.iter().filter(|j| j.complete).count()
    }

    /// Which stage dominates the slowest decile of jobs completing
    /// through each shard. Shards are reported in index order; shards
    /// that completed nothing are omitted.
    pub fn tail_attribution(&self) -> Vec<TailAttribution> {
        let mut by_shard: BTreeMap<u32, Vec<&JobWaterfall>> = BTreeMap::new();
        for j in self.jobs.iter().filter(|j| j.complete) {
            by_shard.entry(j.shard).or_default().push(j);
        }
        let mut shards: Vec<u32> = by_shard.keys().copied().collect();
        shards.sort_unstable();
        shards
            .into_iter()
            .map(|s| {
                let mut js = by_shard.remove(&s).expect("keyed above");
                // Slowest first; job id breaks latency ties so the
                // decile membership is deterministic.
                js.sort_by(|a, b| b.e2e_ns().total_cmp(&a.e2e_ns()).then(a.job.cmp(&b.job)));
                let n = js.len().div_ceil(10);
                let decile = &js[..n];
                let mut sums = [0.0; STAGE_COUNT];
                let mut e2e = 0.0;
                for j in decile {
                    e2e += j.e2e_ns();
                    for (sum, ns) in sums.iter_mut().zip(&j.stages) {
                        *sum += ns;
                    }
                }
                let mut best = Stage::QueueWait;
                for st in Stage::ALL {
                    if sums[st as usize] > sums[best as usize] {
                        best = st;
                    }
                }
                TailAttribution {
                    shard: s,
                    jobs: n,
                    threshold_ns: decile.last().map(|j| j.e2e_ns()).unwrap_or(0.0),
                    mean_e2e_ns: if n == 0 { 0.0 } else { e2e / n as f64 },
                    stage: best,
                    share: if e2e <= 0.0 {
                        0.0
                    } else {
                        sums[best as usize] / e2e
                    },
                }
            })
            .collect()
    }
}

/// Delta-sweep a fully joined job: every chunk interval contributes
/// `+1/-1` state deltas, and each segment between adjacent boundary
/// timestamps is charged to the highest-priority active state — so the
/// per-stage durations partition `[arrival, complete]` exactly.
fn sweep(b: &JobBuild, arrival_ns: f64, complete_ns: f64) -> [f64; STAGE_COUNT] {
    // (t, stage, delta)
    let mut deltas: Vec<(f64, Stage, i32)> = Vec::new();
    for c in &b.chunks {
        let (db, st, sp, ir) = (
            c.doorbell_ns.expect("joined"),
            c.start_ns.expect("joined"),
            c.stop_ns.expect("joined"),
            c.interrupt_ns.expect("joined"),
        );
        deltas.push((c.pick_ns, Stage::Dispatch, 1));
        deltas.push((db, Stage::Dispatch, -1));
        deltas.push((db, Stage::Ring, 1));
        deltas.push((st, Stage::Ring, -1));
        deltas.push((st, Stage::DeviceService, 1));
        deltas.push((sp, Stage::DeviceService, -1));
        deltas.push((sp, Stage::Coalescing, 1));
        deltas.push((ir, Stage::Coalescing, -1));
    }
    for &(a, r) in &b.suspended {
        deltas.push((a, Stage::Suspended, 1));
        deltas.push((r, Stage::Suspended, -1));
    }
    // The last chunk-activity timestamp: idle segments after it are the
    // completion tail, idle segments before it are queue wait.
    let last_activity = deltas
        .iter()
        .map(|&(t, _, _)| t)
        .fold(arrival_ns, f64::max)
        .min(complete_ns);
    let mut times: Vec<f64> = deltas
        .iter()
        .map(|&(t, _, _)| t.clamp(arrival_ns, complete_ns))
        .collect();
    times.push(arrival_ns);
    times.push(last_activity);
    times.push(complete_ns);
    times.sort_by(f64::total_cmp);
    times.dedup();

    let mut stages = [0.0; STAGE_COUNT];
    let mut active = [0i32; STAGE_COUNT];
    // Apply deltas grouped by timestamp, then charge each segment.
    deltas.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut di = 0;
    for w in times.windows(2) {
        let (t0, t1) = (w[0], w[1]);
        while di < deltas.len() && deltas[di].0 <= t0 {
            active[deltas[di].1 as usize] += deltas[di].2;
            di += 1;
        }
        let stage = Stage::PRIORITY
            .iter()
            .copied()
            .find(|&s| active[s as usize] > 0)
            .unwrap_or(if t0 >= last_activity {
                Stage::Completion
            } else {
                Stage::QueueWait
            });
        stages[stage as usize] += t1 - t0;
    }
    stages
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SpanEvent, SpanKind};

    fn stream(evs: &[SpanEvent]) -> Attribution {
        Attribution::from_events(evs.iter())
    }

    /// One job, one chunk, every boundary distinct: each stage is the
    /// exact gap between its bounding events.
    fn simple_job() -> Vec<SpanEvent> {
        vec![
            SpanEvent::new(SpanKind::Arrival, 100.0)
                .tenant(0)
                .job(7)
                .bytes(4096),
            SpanEvent::new(SpanKind::Enqueue, 100.0).tenant(0).job(7),
            SpanEvent::new(SpanKind::DispatchPick, 150.0)
                .tenant(0)
                .shard(0)
                .job(7)
                .seq(3)
                .bytes(4096),
            SpanEvent::new(SpanKind::Doorbell, 160.0).shard(0),
            SpanEvent::new(SpanKind::DeviceStart, 170.0)
                .shard(0)
                .seq(3)
                .bytes(4096),
            SpanEvent::new(SpanKind::Retire, 270.0)
                .shard(0)
                .seq(3)
                .bytes(4096),
            SpanEvent::new(SpanKind::Interrupt, 300.0).shard(0),
            SpanEvent::new(SpanKind::Complete, 320.0)
                .tenant(0)
                .shard(0)
                .job(7)
                .bytes(4096),
        ]
    }

    #[test]
    fn single_chunk_waterfall_is_exact() {
        let a = stream(&simple_job());
        assert_eq!(a.jobs.len(), 1);
        let j = &a.jobs[0];
        assert!(j.complete);
        assert_eq!(j.job, 7);
        assert_eq!((j.tenant, j.shard, j.bytes), (0, 0, 4096));
        assert_eq!(j.stages[Stage::QueueWait as usize], 50.0);
        assert_eq!(j.stages[Stage::Dispatch as usize], 10.0);
        assert_eq!(j.stages[Stage::Ring as usize], 10.0);
        assert_eq!(j.stages[Stage::DeviceService as usize], 100.0);
        assert_eq!(j.stages[Stage::Coalescing as usize], 30.0);
        assert_eq!(j.stages[Stage::Completion as usize], 20.0);
        assert_eq!(j.stages[Stage::Suspended as usize], 0.0);
        let sum: f64 = j.stages.iter().sum();
        assert_eq!(sum, j.e2e_ns());
        assert_eq!(j.dominant_stage(), Stage::DeviceService);
        assert_eq!(a.incomplete, 0);
        assert_eq!(a.dominant_stage(), Some(Stage::DeviceService));
        assert!(a.share(Stage::DeviceService) > 0.45);
        assert_eq!(a.stage_hist(0, Stage::DeviceService).count(), 1);
    }

    #[test]
    fn preempted_job_charges_suspension_and_resume() {
        // Chunk dispatched, started, suspended mid-flight, recalled at
        // the interrupt, resumed later, then retired and completed.
        let evs = vec![
            SpanEvent::new(SpanKind::Arrival, 0.0)
                .tenant(1)
                .job(9)
                .bytes(8192),
            SpanEvent::new(SpanKind::Enqueue, 0.0).tenant(1).job(9),
            SpanEvent::new(SpanKind::DispatchPick, 10.0)
                .tenant(1)
                .shard(0)
                .job(9)
                .seq(0)
                .bytes(8192),
            SpanEvent::new(SpanKind::Doorbell, 10.0).shard(0),
            SpanEvent::new(SpanKind::DeviceStart, 12.0).shard(0).seq(0),
            SpanEvent::new(SpanKind::SuspendRequest, 40.0)
                .tenant(1)
                .shard(0)
                .seq(0),
            SpanEvent::new(SpanKind::Suspend, 50.0)
                .shard(0)
                .seq(0)
                .bytes(4096),
            SpanEvent::new(SpanKind::Interrupt, 55.0).shard(0),
            SpanEvent::new(SpanKind::Recall, 55.0)
                .tenant(1)
                .shard(0)
                .job(9)
                .seq(0)
                .bytes(4096),
            // Resume pick 45ns later under a fresh seq.
            SpanEvent::new(SpanKind::DispatchPick, 100.0)
                .tenant(1)
                .shard(0)
                .job(9)
                .seq(1)
                .bytes(4096),
            SpanEvent::new(SpanKind::Resume, 100.0)
                .tenant(1)
                .shard(0)
                .job(9)
                .seq(1)
                .bytes(4096),
            SpanEvent::new(SpanKind::Doorbell, 100.0).shard(0),
            SpanEvent::new(SpanKind::DeviceStart, 104.0).shard(0).seq(1),
            SpanEvent::new(SpanKind::Retire, 140.0)
                .shard(0)
                .seq(1)
                .bytes(4096),
            SpanEvent::new(SpanKind::Interrupt, 150.0).shard(0),
            SpanEvent::new(SpanKind::Complete, 160.0)
                .tenant(1)
                .shard(0)
                .job(9)
                .bytes(8192),
        ];
        let a = stream(&evs);
        let j = &a.jobs[0];
        assert!(j.complete);
        assert_eq!(j.preemptions, 1);
        assert_eq!(j.chunks, 2);
        // Suspended residency: recall 55 → resume pick 100.
        assert_eq!(j.stages[Stage::Suspended as usize], 45.0);
        // Device service: 12→50 plus 104→140.
        assert_eq!(j.stages[Stage::DeviceService as usize], 38.0 + 36.0);
        // Coalescing: 50→55 plus 140→150.
        assert_eq!(j.stages[Stage::Coalescing as usize], 15.0);
        let sum: f64 = j.stages.iter().sum();
        assert!((sum - j.e2e_ns()).abs() < 1e-9, "{sum} vs {}", j.e2e_ns());
    }

    #[test]
    fn overlapping_chunks_charge_the_most_advanced_state() {
        // Two chunks in flight: chunk B rings behind chunk A's device
        // service — the overlap is charged to device service, not ring.
        let evs = vec![
            SpanEvent::new(SpanKind::Arrival, 0.0)
                .tenant(0)
                .job(1)
                .bytes(100),
            SpanEvent::new(SpanKind::Enqueue, 0.0).tenant(0).job(1),
            SpanEvent::new(SpanKind::DispatchPick, 10.0)
                .tenant(0)
                .shard(0)
                .job(1)
                .seq(0)
                .bytes(50),
            SpanEvent::new(SpanKind::DispatchPick, 10.0)
                .tenant(0)
                .shard(0)
                .job(1)
                .seq(1)
                .bytes(50),
            SpanEvent::new(SpanKind::Doorbell, 10.0).shard(0),
            SpanEvent::new(SpanKind::DeviceStart, 20.0).shard(0).seq(0),
            // seq 1 starts only when seq 0 retires.
            SpanEvent::new(SpanKind::Retire, 60.0)
                .shard(0)
                .seq(0)
                .bytes(50),
            SpanEvent::new(SpanKind::DeviceStart, 60.0).shard(0).seq(1),
            SpanEvent::new(SpanKind::Retire, 90.0)
                .shard(0)
                .seq(1)
                .bytes(50),
            SpanEvent::new(SpanKind::Interrupt, 95.0).shard(0),
            SpanEvent::new(SpanKind::Complete, 100.0)
                .tenant(0)
                .shard(0)
                .job(1)
                .bytes(100),
        ];
        let a = stream(&evs);
        let j = &a.jobs[0];
        assert!(j.complete, "incomplete: {:?}", a.incomplete);
        // 10→20 ring (both staged, none running), 20→90 device service
        // (seq 0 then seq 1; seq 0's 60→95 coalescing overlaps but
        // device service outranks it), 90→95 coalescing, 95→100 tail.
        assert_eq!(j.stages[Stage::Ring as usize], 10.0);
        assert_eq!(j.stages[Stage::DeviceService as usize], 70.0);
        assert_eq!(j.stages[Stage::Coalescing as usize], 5.0);
        assert_eq!(j.stages[Stage::Completion as usize], 5.0);
        assert_eq!(j.stages[Stage::QueueWait as usize], 10.0);
        let sum: f64 = j.stages.iter().sum();
        assert_eq!(sum, 100.0);
    }

    #[test]
    fn truncated_ring_degrades_to_incomplete_without_panicking() {
        // Drop the front of the stream (arrival + pick lost): the
        // device events are unowned, the complete-only job is
        // incomplete, and nothing panics.
        let full = simple_job();
        let a = stream(&full[4..]);
        assert_eq!(a.incomplete, 1);
        assert_eq!(a.unowned_device_events, 2, "device-start + retire unowned");
        assert_eq!(a.jobs.len(), 1);
        assert!(!a.jobs[0].complete);
        assert_eq!(a.jobs[0].e2e_ns(), 0.0);
        assert_eq!(a.jobs[0].stages, [0.0; STAGE_COUNT]);
        assert_eq!(a.complete_jobs(), 0);
        assert_eq!(a.dominant_stage(), None);

        // Drop the tail (no complete event): also incomplete.
        let b = stream(&full[..7]);
        assert_eq!(b.incomplete, 1);
        assert!(!b.jobs[0].complete);

        // Every suffix and prefix of the stream joins without panics.
        for k in 0..=full.len() {
            let _ = stream(&full[k..]);
            let _ = stream(&full[..k]);
        }
    }

    #[test]
    fn tail_attribution_finds_the_dominant_stage_per_shard() {
        // Ten jobs on shard 0: nine with negligible queue wait, one
        // queue-bound straggler. Overall the run is device-bound
        // (10 × 200 ns of service vs 990 ns of total waiting), but the
        // slowest decile — exactly the straggler — is queue-bound:
        // tail attribution and whole-run attribution disagree, which
        // is the point of the view.
        let mut evs = Vec::new();
        for i in 0..10u64 {
            let base = 2000.0 * i as f64;
            let wait = if i == 9 { 900.0 } else { 10.0 };
            evs.extend([
                SpanEvent::new(SpanKind::Arrival, base)
                    .tenant(0)
                    .job(i)
                    .bytes(64),
                SpanEvent::new(SpanKind::Enqueue, base).tenant(0).job(i),
                SpanEvent::new(SpanKind::DispatchPick, base + wait)
                    .tenant(0)
                    .shard(0)
                    .job(i)
                    .seq(i)
                    .bytes(64),
                SpanEvent::new(SpanKind::Doorbell, base + wait).shard(0),
                SpanEvent::new(SpanKind::DeviceStart, base + wait + 1.0)
                    .shard(0)
                    .seq(i),
                SpanEvent::new(SpanKind::Retire, base + wait + 201.0)
                    .shard(0)
                    .seq(i)
                    .bytes(64),
                SpanEvent::new(SpanKind::Interrupt, base + wait + 202.0).shard(0),
                SpanEvent::new(SpanKind::Complete, base + wait + 203.0)
                    .tenant(0)
                    .shard(0)
                    .job(i)
                    .bytes(64),
            ]);
        }
        let a = stream(&evs);
        assert_eq!(a.complete_jobs(), 10);
        let tails = a.tail_attribution();
        assert_eq!(tails.len(), 1);
        let t = &tails[0];
        assert_eq!(t.shard, 0);
        assert_eq!(t.jobs, 1);
        assert_eq!(t.stage, Stage::QueueWait);
        assert!(t.share > 0.8, "queue wait should dominate: {}", t.share);
        assert_eq!(t.mean_e2e_ns, 1103.0);
        assert_eq!(t.threshold_ns, 1103.0);
        // Whole-run view: device service dominates.
        assert_eq!(a.dominant_stage(), Some(Stage::DeviceService));
    }

    /// The join tables are `BTreeMap`s precisely so no output ordering
    /// can depend on hash-iteration order: jobs fold out sorted by id
    /// and tail attribution reports shards in ascending index order,
    /// regardless of the order ids and shards appear in the stream.
    #[test]
    fn output_order_is_independent_of_insertion_order() {
        // Jobs land in scrambled id order, completing on shards 3,1,2.
        let mut evs = Vec::new();
        for (k, (id, shard)) in [(9u64, 3usize), (2, 1), (5, 2), (7, 1)]
            .into_iter()
            .enumerate()
        {
            let base = 1000.0 * k as f64;
            evs.extend([
                SpanEvent::new(SpanKind::Arrival, base)
                    .tenant(0)
                    .job(id)
                    .bytes(64),
                SpanEvent::new(SpanKind::Enqueue, base).tenant(0).job(id),
                SpanEvent::new(SpanKind::DispatchPick, base + 10.0)
                    .tenant(0)
                    .shard(shard)
                    .job(id)
                    .seq(id)
                    .bytes(64),
                SpanEvent::new(SpanKind::Doorbell, base + 10.0).shard(shard),
                SpanEvent::new(SpanKind::DeviceStart, base + 12.0)
                    .shard(shard)
                    .seq(id),
                SpanEvent::new(SpanKind::Retire, base + 50.0)
                    .shard(shard)
                    .seq(id)
                    .bytes(64),
                SpanEvent::new(SpanKind::Interrupt, base + 55.0).shard(shard),
                SpanEvent::new(SpanKind::Complete, base + 60.0)
                    .tenant(0)
                    .shard(shard)
                    .job(id)
                    .bytes(64),
            ]);
        }
        let a = stream(&evs);
        let ids: Vec<u64> = a.jobs.iter().map(|j| j.job).collect();
        assert_eq!(ids, vec![2, 5, 7, 9], "jobs sorted by id, not stream order");
        let shards: Vec<u32> = a.tail_attribution().iter().map(|t| t.shard).collect();
        assert_eq!(
            shards,
            vec![1, 2, 3],
            "shards in index order, not completion order"
        );
        // Folding the identical stream twice is structurally identical.
        let b = stream(&evs);
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.job, y.job);
            assert_eq!(x.stages, y.stages);
        }
    }

    #[test]
    fn stage_names_and_order() {
        assert_eq!(Stage::ALL.len(), STAGE_COUNT);
        for w in Stage::ALL.windows(2) {
            assert!((w[0] as usize) < (w[1] as usize));
        }
        assert_eq!(Stage::QueueWait.name(), "queue-wait");
        assert_eq!(Stage::Completion.name(), "completion");
    }
}
