//! A unified named-counter namespace over the per-layer stats structs.
//!
//! Each layer already keeps its own plain stats struct (`TimingStats`,
//! `DceStats`, `HostQueueStats`, `TenantStats`, …). Implementing
//! [`Counters`] flattens one of those into dotted `prefix.name` entries
//! of a [`CounterSet`], so exporters and dashboards see a single flat,
//! insertion-ordered namespace instead of N struct shapes.

/// An insertion-ordered set of `(name, value)` counters. Order is the
/// emission order, so exports are deterministic without sorting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CounterSet {
    entries: Vec<(String, f64)>,
}

impl CounterSet {
    /// An empty set.
    pub fn new() -> Self {
        CounterSet::default()
    }

    /// Append a counter under `prefix.name` (or bare `name` if the
    /// prefix is empty).
    pub fn push(&mut self, prefix: &str, name: &str, value: f64) {
        let key = if prefix.is_empty() {
            name.to_string()
        } else {
            format!("{prefix}.{name}")
        };
        self.entries.push((key, value));
    }

    /// Look up a counter by its full dotted name (first match).
    pub fn get(&self, key: &str) -> Option<f64> {
        self.entries.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// Number of counters held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate `(name, value)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Absorb every counter of `other`, in order, after this set's.
    pub fn extend_from(&mut self, other: &CounterSet) {
        self.entries.extend(other.entries.iter().cloned());
    }
}

/// Flatten a stats struct into named counters. Implementations must be
/// deterministic: a fixed emission order and values derived only from
/// the struct.
pub trait Counters {
    /// Append this struct's counters to `out`, each named
    /// `prefix.<field>`.
    fn counters(&self, prefix: &str, out: &mut CounterSet);
}

/// A point-in-time freeze of the whole stack's counters: one timestamp,
/// one flat namespace.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Simulated time the snapshot was taken, ns.
    pub t_ns: f64,
    /// The flattened counters.
    pub counters: CounterSet,
}

impl TelemetrySnapshot {
    /// An empty snapshot at `t_ns`.
    pub fn new(t_ns: f64) -> Self {
        TelemetrySnapshot {
            t_ns,
            counters: CounterSet::new(),
        }
    }

    /// Append a source's counters under `prefix`.
    pub fn add(&mut self, prefix: &str, src: &dyn Counters) -> &mut Self {
        src.counters(prefix, &mut self.counters);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake {
        a: u64,
        b: f64,
    }

    impl Counters for Fake {
        fn counters(&self, prefix: &str, out: &mut CounterSet) {
            out.push(prefix, "a", self.a as f64);
            out.push(prefix, "b", self.b);
        }
    }

    #[test]
    fn counters_flatten_with_dotted_prefixes() {
        let mut snap = TelemetrySnapshot::new(100.0);
        snap.add("dce0", &Fake { a: 3, b: 0.5 });
        snap.add("dce1", &Fake { a: 7, b: 1.5 });
        assert_eq!(snap.counters.len(), 4);
        assert_eq!(snap.counters.get("dce0.a"), Some(3.0));
        assert_eq!(snap.counters.get("dce1.b"), Some(1.5));
        assert_eq!(snap.counters.get("dce2.a"), None);
        let names: Vec<&str> = snap.counters.iter().map(|(k, _)| k).collect();
        assert_eq!(names, ["dce0.a", "dce0.b", "dce1.a", "dce1.b"]);
    }

    #[test]
    fn empty_prefix_emits_bare_names() {
        let mut set = CounterSet::new();
        set.push("", "edges_skipped", 9.0);
        assert_eq!(set.get("edges_skipped"), Some(9.0));
        assert!(!set.is_empty());
    }

    #[test]
    fn extend_preserves_order() {
        let mut a = CounterSet::new();
        a.push("x", "one", 1.0);
        let mut b = CounterSet::new();
        b.push("y", "two", 2.0);
        a.extend_from(&b);
        let names: Vec<&str> = a.iter().map(|(k, _)| k).collect();
        assert_eq!(names, ["x.one", "y.two"]);
    }
}
