//! The span-event vocabulary: one fixed-size `Copy` record per
//! lifecycle point, cheap enough to stamp on the hot path.

/// `tenant` value for events not attributable to a tenant at emission
/// time (device-side events know only their ring sequence number; the
/// exporter joins them to an owner through the dispatch-pick event of
/// the same `(shard, seq)`).
pub const NO_TENANT: u32 = u32::MAX;
/// `shard` value for events outside any shard (pre-dispatch lifecycle).
pub const NO_SHARD: u32 = u32::MAX;
/// `job` value for events not attributable to a job at emission time.
pub const NO_JOB: u64 = u64::MAX;
/// `seq` value for events without a ring sequence number.
pub const NO_SEQ: u64 = u64::MAX;

/// A point in a job's lifecycle, in causal order: a job arrives, is
/// enqueued, has chunks picked/doorbelled/started/retired (possibly
/// suspended and resumed in between), and finally completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum SpanKind {
    /// A tenant's generator produced the job (runtime, arrival time).
    Arrival = 0,
    /// The job entered its tenant's submission queue.
    Enqueue = 1,
    /// The policy picked one chunk of the job and staged it on a
    /// shard's submission ring (`seq` = ring sequence number).
    DispatchPick = 2,
    /// A staged remainder of a previously suspended chunk was
    /// re-dispatched (always paired with a [`DispatchPick`] of the same
    /// `seq` at the same instant).
    ///
    /// [`DispatchPick`]: SpanKind::DispatchPick
    Resume = 3,
    /// A doorbell MMIO write published the shard's staged batch.
    Doorbell = 4,
    /// The engine installed the descriptor and began executing
    /// (device-side, cycle-stamped).
    DeviceStart = 5,
    /// The host asked the engine to suspend its in-service descriptor
    /// (the drain starts; the suspension itself lands later).
    SuspendRequest = 6,
    /// The engine quiesced and parked the descriptor mid-transfer: a
    /// partial retirement surfaced on the completion ring
    /// (device-side, cycle-stamped).
    Suspend = 7,
    /// The engine fully retired the descriptor (device-side,
    /// cycle-stamped).
    Retire = 8,
    /// A completion interrupt was fielded on a shard (one per coalesced
    /// batch).
    Interrupt = 9,
    /// The host claimed a recalled remainder at the interrupt and
    /// re-attached it to its job for a later resume.
    Recall = 10,
    /// The job's last chunk was serviced; its completion record was
    /// written (`t_ns` is the job's completion time, which can precede
    /// the fielding edge's `now` only never — it is clamped to the
    /// announcing interrupt).
    Complete = 11,
}

impl SpanKind {
    /// Every kind, in causal order.
    pub const ALL: [SpanKind; 12] = [
        SpanKind::Arrival,
        SpanKind::Enqueue,
        SpanKind::DispatchPick,
        SpanKind::Resume,
        SpanKind::Doorbell,
        SpanKind::DeviceStart,
        SpanKind::SuspendRequest,
        SpanKind::Suspend,
        SpanKind::Retire,
        SpanKind::Interrupt,
        SpanKind::Recall,
        SpanKind::Complete,
    ];

    /// Stable label (exporter slice/event names).
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::Arrival => "arrival",
            SpanKind::Enqueue => "enqueue",
            SpanKind::DispatchPick => "dispatch-pick",
            SpanKind::Resume => "resume",
            SpanKind::Doorbell => "doorbell",
            SpanKind::DeviceStart => "device-start",
            SpanKind::SuspendRequest => "suspend-request",
            SpanKind::Suspend => "suspend",
            SpanKind::Retire => "retire",
            SpanKind::Interrupt => "interrupt",
            SpanKind::Recall => "recall",
            SpanKind::Complete => "complete",
        }
    }
}

/// One recorded lifecycle point: a timestamp, the kind, and the
/// tenant/shard/job/seq tags that let the exporter reassemble per-job
/// and per-shard tracks. Fields that do not apply hold the `NO_*`
/// sentinels. `Copy` and fixed-size by design — recording is a store,
/// never an allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanEvent {
    /// Simulation timestamp, ns.
    pub t_ns: f64,
    /// Lifecycle point.
    pub kind: SpanKind,
    /// Owning tenant index, or [`NO_TENANT`].
    pub tenant: u32,
    /// Shard (engine / ring) index, or [`NO_SHARD`].
    pub shard: u32,
    /// Job id, or [`NO_JOB`].
    pub job: u64,
    /// Ring sequence number on `shard`, or [`NO_SEQ`].
    pub seq: u64,
    /// Payload bytes the event covers (job bytes for arrival/complete,
    /// chunk bytes for dispatch/device events; 0 where meaningless).
    pub bytes: u64,
}

impl SpanEvent {
    /// An event with every tag defaulted to its `NO_*` sentinel.
    pub fn new(kind: SpanKind, t_ns: f64) -> Self {
        SpanEvent {
            t_ns,
            kind,
            tenant: NO_TENANT,
            shard: NO_SHARD,
            job: NO_JOB,
            seq: NO_SEQ,
            bytes: 0,
        }
    }

    /// Builder: set the owning tenant.
    pub fn tenant(mut self, tenant: usize) -> Self {
        self.tenant = tenant as u32;
        self
    }

    /// Builder: set the shard.
    pub fn shard(mut self, shard: usize) -> Self {
        self.shard = shard as u32;
        self
    }

    /// Builder: set the job id.
    pub fn job(mut self, job: u64) -> Self {
        self.job = job;
        self
    }

    /// Builder: set the ring sequence number.
    pub fn seq(mut self, seq: u64) -> Self {
        self.seq = seq;
        self
    }

    /// Builder: set the payload byte count.
    pub fn bytes(mut self, bytes: u64) -> Self {
        self.bytes = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_causally_ordered_and_named() {
        for w in SpanKind::ALL.windows(2) {
            assert!(w[0] < w[1], "{:?} < {:?}", w[0], w[1]);
        }
        let names: Vec<&str> = SpanKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 12);
        assert!(names.contains(&"device-start") && names.contains(&"complete"));
    }

    #[test]
    fn builder_tags_compose() {
        let e = SpanEvent::new(SpanKind::DispatchPick, 42.5)
            .tenant(3)
            .shard(1)
            .job(7)
            .seq(19)
            .bytes(4096);
        assert_eq!(e.t_ns, 42.5);
        assert_eq!(
            (e.tenant, e.shard, e.job, e.seq, e.bytes),
            (3, 1, 7, 19, 4096)
        );
        let bare = SpanEvent::new(SpanKind::Doorbell, 0.0);
        assert_eq!(bare.tenant, NO_TENANT);
        assert_eq!(bare.seq, NO_SEQ);
    }
}
