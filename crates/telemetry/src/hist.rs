//! Fixed-bucket log2 latency histograms — deterministic, O(1) to
//! record, zero-allocation. Moved here from `pim-runtime` so the SLO
//! tracker and the attribution aggregates (which live below the
//! runtime) can stream onto the same structure the tenant metrics use.

/// Number of power-of-two buckets. Bucket `b` holds values whose bit
/// width is `b` (i.e. `v ∈ [2^(b-1), 2^b)`), bucket 0 holds zero; the
/// largest distinct bucket tops out at 2^47 ns ≈ 39 hours (anything
/// larger clamps into it).
pub const HIST_BUCKETS: usize = 48;

/// A fixed-bucket log2 histogram over nanosecond values.
///
/// Quantiles come back as the *upper bound* of the bucket holding the
/// requested rank — a ≤2x overestimate by construction, which is the
/// usual trade for O(1) recording with zero allocation and no
/// dependencies.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0.0,
            max: 0.0,
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Record one value (negative values clamp to zero).
    pub fn record(&mut self, v_ns: f64) {
        let v = v_ns.max(0.0);
        let n = v as u64;
        let b = (u64::BITS - n.leading_zeros()) as usize;
        self.buckets[b.min(HIST_BUCKETS - 1)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of the recorded values (after the negative clamp).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The value at quantile `q ∈ [0, 1]`, reported as the upper bound of
    /// the bucket containing that rank (0 when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if b == 0 { 0.0 } else { (1u64 << b) as f64 };
            }
        }
        (1u64 << (HIST_BUCKETS - 1)) as f64
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile (bucket upper bound).
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile (bucket upper bound) — the SLO tail. With a
    /// log2 histogram this costs nothing extra over p99; it only starts
    /// to differ from `max` once more than ~1000 values are recorded.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }

    /// Iterate non-empty buckets as `(upper_bound_ns, count)` pairs, in
    /// ascending bound order (bucket 0 reports bound 0.0). Exporters use
    /// this to dump the distribution without reaching into the layout.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(b, &n)| {
                let bound = if b == 0 { 0.0 } else { (1u64 << b) as f64 };
                (bound, n)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bound_the_data() {
        let mut h = LogHistogram::new();
        for v in [100.0, 200.0, 400.0, 800.0, 100_000.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        // p50 rank is the 3rd value (400) → bucket upper bound 512.
        assert_eq!(h.p50(), 512.0);
        // The tail lands in 100_000's bucket: 2^17 = 131072.
        assert_eq!(h.p99(), 131072.0);
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99());
        assert_eq!(h.max(), 100_000.0);
        assert!((h.mean() - 20_300.0).abs() < 1e-9);
        assert!((h.sum() - 101_500.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_edges() {
        let mut h = LogHistogram::new();
        assert_eq!(h.p99(), 0.0);
        assert_eq!(h.mean(), 0.0);
        h.record(0.0);
        h.record(-5.0);
        assert_eq!(h.p50(), 0.0);
        h.record(1e30); // clamps into the last bucket without panicking
        assert_eq!(h.quantile(1.0), (1u64 << (HIST_BUCKETS - 1)) as f64);
    }

    #[test]
    fn p999_tracks_the_extreme_tail() {
        let mut h = LogHistogram::new();
        // 1999 fast values and one 1 ms outlier: p99 stays in the fast
        // bucket, p999 lands exactly at the rank of the outlier.
        for _ in 0..1999 {
            h.record(100.0);
        }
        h.record(1_000_000.0);
        assert_eq!(h.p99(), 128.0);
        assert_eq!(h.p999(), 128.0); // rank 2000*0.999 = 1998 → fast bucket
        h.record(1_000_000.0);
        h.record(1_000_000.0);
        // 3 outliers of 2002: rank ⌈1999.998⌉ = 2000 > 1999 → outlier bucket.
        assert_eq!(h.p999(), (1u64 << 20) as f64);
        assert!(h.p99() <= h.p999());
    }

    #[test]
    fn bucket_iteration_reconstructs_the_distribution() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(3.0);
        h.record(3.5);
        h.record(1000.0);
        let got: Vec<(f64, u64)> = h.buckets().collect();
        assert_eq!(got, [(0.0, 1), (4.0, 2), (1024.0, 1)]);
        assert_eq!(got.iter().map(|&(_, n)| n).sum::<u64>(), h.count());
        assert!(LogHistogram::new().buckets().next().is_none());
    }

    #[test]
    fn quantile_upper_bound_is_within_2x() {
        let mut h = LogHistogram::new();
        h.record(1000.0);
        let q = h.p50();
        assert!((1000.0..=2000.0).contains(&q), "{q}");
    }

    /// Exact nearest-rank quantile of a sorted slice (rank
    /// `⌈q·n⌉ ≥ 1`), mirroring the histogram's rank arithmetic.
    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    #[test]
    fn quantile_matches_exact_rank_on_known_distributions() {
        // A known multiset: 10× 10ns, 80× 100ns, 9× 1000ns, 1× 50000ns
        // (a caricatured fast/medium/slow/outlier latency mix).
        let mut vals = Vec::new();
        vals.extend(std::iter::repeat_n(10.0, 10));
        vals.extend(std::iter::repeat_n(100.0, 80));
        vals.extend(std::iter::repeat_n(1000.0, 9));
        vals.push(50_000.0);
        let mut h = LogHistogram::new();
        for &v in &vals {
            h.record(v);
        }
        // The histogram's answer must equal the bucket upper bound of
        // the *exact* nearest-rank quantile, for a dense grid of q.
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let exact = exact_quantile(&vals, q);
            let n = exact as u64;
            let b = (u64::BITS - n.leading_zeros()) as usize;
            let bound = if b == 0 { 0.0 } else { (1u64 << b) as f64 };
            assert_eq!(h.quantile(q), bound, "q={q}, exact={exact}");
            // And it brackets the exact quantile within its 2x bound.
            assert!(h.quantile(q) >= exact, "q={q}");
            assert!(h.quantile(q) <= (2.0 * exact).max(1.0), "q={q}");
        }
        // Spot-check the interesting ranks directly.
        assert_eq!(h.quantile(0.05), 16.0); // rank 5 → 10ns bucket (8,16]
        assert_eq!(h.p50(), 128.0); // rank 50 → 100ns bucket
        assert_eq!(h.p95(), 1024.0); // rank 95 → 1000ns bucket
        assert_eq!(h.quantile(1.0), 65536.0); // rank 100 → the outlier
        assert_eq!(h.count(), 100);
        let exact_mean: f64 = vals.iter().sum::<f64>() / 100.0;
        assert!((h.mean() - exact_mean).abs() < 1e-9);
    }

    #[test]
    fn quantile_on_uniform_ladder_is_monotone_and_tight() {
        // 1..=512: every bucket from 1 to 10 populated with known counts.
        let mut h = LogHistogram::new();
        let vals: Vec<f64> = (1..=512).map(|v| v as f64).collect();
        for &v in &vals {
            h.record(v);
        }
        let mut prev = 0.0;
        for i in 0..=1000 {
            let q = i as f64 / 1000.0;
            let got = h.quantile(q);
            assert!(got >= prev, "quantile must be monotone in q");
            prev = got;
            let exact = exact_quantile(&vals, q);
            assert!(
                got >= exact && got <= 2.0 * exact,
                "q={q} got={got} exact={exact}"
            );
        }
    }
}
