//! Workspace-wide observability for the serving stack.
//!
//! Three instruments, all deterministic (two runs of the same seeded
//! trace emit byte-identical streams) and all free when disabled:
//!
//! * **Span tracing** ([`event`], [`recorder`]): every job emits
//!   timestamped [`SpanEvent`]s (arrival, dispatch-pick, doorbell,
//!   device-start, suspend/resume/recall, retire, interrupt, complete)
//!   tagged with tenant/shard/ring-seq into a bounded
//!   [`FlightRecorder`] ring with a configurable [`DropPolicy`]. The
//!   hot path is one predictable branch plus a `Copy` store into a
//!   preallocated buffer — no allocation, and a disabled recorder
//!   returns before touching memory. Device-side components that do not
//!   know wall-clock time record through a [`SpanTap`] (cycle-stamped,
//!   converted at the tap) that the composer drains into the recorder.
//! * **Counter registry** ([`counters`]): the per-layer stats structs
//!   (`TimingStats`, `DceStats`, `HostQueueStats`, `TenantStats`, …)
//!   implement [`Counters`] to flatten into one insertion-ordered
//!   [`CounterSet`] — a single named-counter namespace a
//!   [`TelemetrySnapshot`] freezes at a point in simulated time.
//! * **Time series** ([`sampler`]): a [`SampleSeries`] records a fixed
//!   column schema (queue depths, in-flight bytes, per-shard goodput,
//!   `edges_skipped`) at a configurable cadence. The composer registers
//!   the cadence as a clock domain, so under event-driven timing the
//!   next sample deadline is just another edge — idle-skip still
//!   engages and sampling cost is proportional to samples taken, not
//!   simulated time.
//!
//! On top of the raw signal sit the *analysis* layers (PR 8):
//!
//! * **Latency attribution** ([`attribution`]): a span joiner +
//!   stage-waterfall engine folding the recorder into per-job stage
//!   durations (queue-wait → dispatch → ring → device service →
//!   suspended → coalescing → completion tail) that sum exactly to the
//!   job's end-to-end latency, with per-tenant × per-stage
//!   [`LogHistogram`] aggregation and a slowest-decile tail view.
//! * **SLO tracking** ([`slo`]): per-class latency/goodput objectives
//!   with fast+slow-window burn rates and edge-triggered breach
//!   instants — the signal surface a shard autoscaler consumes.
//! * **Histograms** ([`hist`]): the fixed-bucket log2 [`LogHistogram`]
//!   (moved down from `pim-runtime` so the layers above share it).
//!
//! This crate is dependency-free and sits below every other workspace
//! crate; the Perfetto/Chrome-trace exporter lives in `pim-bench`
//! (where the deterministic JSON writer is).

pub mod attribution;
pub mod counters;
pub mod event;
pub mod hist;
pub mod recorder;
pub mod sampler;
pub mod slo;

pub use attribution::{Attribution, JobWaterfall, Stage, TailAttribution, STAGE_COUNT};
pub use counters::{CounterSet, Counters, TelemetrySnapshot};
pub use event::{SpanEvent, SpanKind, NO_JOB, NO_SEQ, NO_SHARD, NO_TENANT};
pub use hist::{LogHistogram, HIST_BUCKETS};
pub use recorder::{DropPolicy, FlightRecorder, SpanTap, TelemetryConfig};
pub use sampler::SampleSeries;
pub use slo::{BreachKind, SloBreach, SloConfig, SloTracker};
