//! The flight recorder: a bounded span-event ring with a configurable
//! drop policy, plus the cycle-stamped [`SpanTap`] device components
//! record through.

use crate::event::SpanEvent;

/// What to do when the flight recorder is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropPolicy {
    /// Keep the oldest events; new events are counted and discarded
    /// (the deterministic default — the ring's contents are a prefix of
    /// the run, so partial traces are still causally closed).
    DropNewest,
    /// Overwrite the oldest events, keeping a sliding window of the
    /// most recent ones (classic flight-recorder behavior for
    /// investigating how a long run *ended*).
    DropOldest,
}

/// Telemetry configuration, carried inside the runtime config so one
/// struct plumbs the whole stack. Disabled (the default) costs one
/// predictable branch per would-be event and nothing else.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Master switch: when false, no ring is allocated, no sampler
    /// domain is registered, and every record call returns immediately.
    pub enabled: bool,
    /// Flight-recorder capacity in events (preallocated at enable).
    pub capacity: usize,
    /// Policy once `capacity` is reached.
    pub drop: DropPolicy,
    /// Time-series sampling cadence, ns.
    pub sample_ns: f64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: false,
            capacity: 1 << 16,
            drop: DropPolicy::DropNewest,
            sample_ns: 5_000.0,
        }
    }
}

impl TelemetryConfig {
    /// An enabled configuration with the default ring and cadence.
    pub fn on() -> Self {
        TelemetryConfig {
            enabled: true,
            ..TelemetryConfig::default()
        }
    }
}

/// A bounded ring of [`SpanEvent`]s. The buffer is preallocated at
/// construction; recording is a branch plus a `Copy` store. Iteration
/// yields events in record order (oldest surviving first).
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    buf: Vec<SpanEvent>,
    /// Index of the oldest event once the ring has wrapped
    /// ([`DropPolicy::DropOldest`] only).
    head: usize,
    capacity: usize,
    policy: DropPolicy,
    enabled: bool,
    recorded: u64,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder per `cfg` (disabled config ⇒ no allocation).
    pub fn new(cfg: TelemetryConfig) -> Self {
        let capacity = if cfg.enabled { cfg.capacity.max(1) } else { 0 };
        FlightRecorder {
            buf: Vec::with_capacity(capacity),
            head: 0,
            capacity,
            policy: cfg.drop,
            enabled: cfg.enabled,
            recorded: 0,
            dropped: 0,
        }
    }

    /// A permanently disabled recorder (no allocation).
    pub fn off() -> Self {
        FlightRecorder::new(TelemetryConfig::default())
    }

    /// Whether recording is live. Callers with nontrivial event
    /// construction can guard on this; [`record`](Self::record) checks
    /// it again either way.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record one event. Zero-allocation: the buffer never grows past
    /// its preallocated capacity, and a disabled or full-with-
    /// [`DropPolicy::DropNewest`] recorder only bumps a counter.
    ///
    /// Accounting invariant: `recorded() + dropped()` equals the total
    /// number of events ever offered to an enabled recorder, under
    /// *both* drop policies — `recorded` counts events currently
    /// retained, `dropped` counts events lost to the policy (a
    /// [`DropPolicy::DropOldest`] overwrite retains the new event and
    /// drops the overwritten one: one in, one out).
    #[inline]
    pub fn record(&mut self, ev: SpanEvent) {
        if !self.enabled {
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
            self.recorded += 1;
            return;
        }
        match self.policy {
            DropPolicy::DropNewest => self.dropped += 1,
            DropPolicy::DropOldest => {
                self.buf[self.head] = ev;
                self.head = (self.head + 1) % self.capacity;
                self.dropped += 1;
            }
        }
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events currently retained in the ring, as a counter
    /// (== [`len`](Self::len)). `recorded() + dropped()` is the total
    /// offered while enabled, under both drop policies.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events lost to the drop policy (dropped new ones or overwritten
    /// old ones).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever offered to the recorder while enabled:
    /// `recorded() + dropped()`.
    pub fn offered(&self) -> u64 {
        self.recorded + self.dropped
    }

    /// Surviving events in record order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &SpanEvent> {
        let (wrapped, start) = self.buf.split_at(self.head.min(self.buf.len()));
        start.iter().chain(wrapped.iter())
    }
}

/// A small cycle-stamped span buffer for device-side components that
/// know engine cycles but not wall-clock nanoseconds. The owner
/// records with cycle timestamps; the composer periodically
/// [`drain_into`](Self::drain_into)s the shared [`FlightRecorder`],
/// converting cycles to ns with the tap's `ns_per_cycle` and stamping
/// the component's shard id. Disabled taps cost one branch per call.
#[derive(Debug, Clone)]
pub struct SpanTap {
    enabled: bool,
    ns_per_cycle: f64,
    buf: Vec<SpanEvent>,
    capacity: usize,
    dropped: u64,
}

impl SpanTap {
    /// A disabled tap (the default state of every component).
    pub fn off() -> Self {
        SpanTap {
            enabled: false,
            ns_per_cycle: 0.0,
            buf: Vec::new(),
            capacity: 0,
            dropped: 0,
        }
    }

    /// An enabled tap converting local cycles at `ns_per_cycle`,
    /// holding at most `capacity` undrained events (overflow drops the
    /// newest and counts it).
    pub fn new(ns_per_cycle: f64, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpanTap {
            enabled: true,
            ns_per_cycle,
            buf: Vec::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Whether the tap records.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event whose timestamp is a local cycle count; the ns
    /// conversion happens here (deterministic `f64` multiply).
    #[inline]
    pub fn record_at_cycle(&mut self, ev: SpanEvent, cycle: u64) {
        if !self.enabled {
            return;
        }
        if self.buf.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        let mut ev = ev;
        ev.t_ns = cycle as f64 * self.ns_per_cycle;
        self.buf.push(ev);
    }

    /// Undrained events held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the tap holds nothing to drain.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events lost to the capacity bound since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Move every buffered event into `rec`, stamping `shard` on each.
    /// Record order is preserved, so the recorder's stream stays
    /// deterministic.
    pub fn drain_into(&mut self, rec: &mut FlightRecorder, shard: usize) {
        for mut ev in self.buf.drain(..) {
            ev.shard = shard as u32;
            rec.record(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SpanKind;

    fn ev(t: f64) -> SpanEvent {
        SpanEvent::new(SpanKind::Doorbell, t)
    }

    #[test]
    fn disabled_recorder_is_a_noop() {
        let mut r = FlightRecorder::off();
        r.record(ev(1.0));
        assert!(!r.enabled() && r.is_empty());
        assert_eq!(r.recorded(), 0);
        assert_eq!(r.buf.capacity(), 0, "disabled recorder allocates nothing");
    }

    #[test]
    fn drop_newest_keeps_the_prefix() {
        let mut r = FlightRecorder::new(TelemetryConfig {
            enabled: true,
            capacity: 3,
            drop: DropPolicy::DropNewest,
            sample_ns: 1.0,
        });
        for i in 0..5 {
            r.record(ev(i as f64));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.recorded(), 3, "recorded counts retained events");
        assert_eq!(r.offered(), 5);
        let ts: Vec<f64> = r.iter().map(|e| e.t_ns).collect();
        assert_eq!(ts, [0.0, 1.0, 2.0]);
    }

    #[test]
    fn drop_oldest_keeps_a_sliding_window() {
        let mut r = FlightRecorder::new(TelemetryConfig {
            enabled: true,
            capacity: 3,
            drop: DropPolicy::DropOldest,
            sample_ns: 1.0,
        });
        for i in 0..5 {
            r.record(ev(i as f64));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.recorded(), 3, "an overwrite is one in, one out");
        assert_eq!(r.offered(), 5);
        let ts: Vec<f64> = r.iter().map(|e| e.t_ns).collect();
        assert_eq!(ts, [2.0, 3.0, 4.0], "oldest surviving first");
    }

    #[test]
    fn recording_never_reallocates() {
        let mut r = FlightRecorder::new(TelemetryConfig {
            enabled: true,
            capacity: 8,
            drop: DropPolicy::DropOldest,
            sample_ns: 1.0,
        });
        let cap = r.buf.capacity();
        for i in 0..100 {
            r.record(ev(i as f64));
        }
        assert_eq!(r.buf.capacity(), cap);
    }

    #[test]
    fn tap_converts_cycles_and_stamps_shard() {
        let mut tap = SpanTap::new(0.3125, 16);
        tap.record_at_cycle(SpanEvent::new(SpanKind::DeviceStart, 0.0).seq(4), 32);
        tap.record_at_cycle(SpanEvent::new(SpanKind::Retire, 0.0).seq(4), 100);
        let mut rec = FlightRecorder::new(TelemetryConfig::on());
        tap.drain_into(&mut rec, 2);
        assert!(tap.is_empty());
        let evs: Vec<&SpanEvent> = rec.iter().collect();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].t_ns, 10.0);
        assert_eq!(evs[1].t_ns, 31.25);
        assert!(evs.iter().all(|e| e.shard == 2 && e.seq == 4));
    }

    #[test]
    fn tap_overflow_drops_and_counts() {
        let mut tap = SpanTap::new(1.0, 2);
        for c in 0..4 {
            tap.record_at_cycle(ev(0.0), c);
        }
        assert_eq!(tap.len(), 2);
        assert_eq!(tap.dropped(), 2);
        let mut off = SpanTap::off();
        off.record_at_cycle(ev(0.0), 5);
        assert!(off.is_empty() && !off.enabled());
    }
}
