//! A fixed-schema time series sampled at a configurable cadence.
//!
//! The composer owns a [`SampleSeries`], registers its cadence as a
//! clock domain (so under event-driven timing the next sample deadline
//! is an ordinary edge and idle-skip still engages), and calls
//! [`record`](SampleSeries::record) whenever that domain fires. Rows
//! are plain `f64` vectors in column order — deterministic to export,
//! cheap to append.

/// A time series with a fixed column schema. Rows are appended in
/// time order; each row stores its timestamp plus one value per column.
#[derive(Debug, Clone)]
pub struct SampleSeries {
    columns: Vec<String>,
    times: Vec<f64>,
    rows: Vec<Vec<f64>>,
    period_ns: f64,
}

impl SampleSeries {
    /// A series with the given column names, sampled every `period_ns`.
    pub fn new(columns: &[&str], period_ns: f64) -> Self {
        assert!(period_ns > 0.0, "sample period must be positive");
        SampleSeries {
            columns: columns.iter().map(|c| c.to_string()).collect(),
            times: Vec::new(),
            rows: Vec::new(),
            period_ns,
        }
    }

    /// The sampling cadence, ns.
    pub fn period_ns(&self) -> f64 {
        self.period_ns
    }

    /// Column names, in schema order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Append one row at `t_ns`. `values` must match the schema width;
    /// timestamps must be non-decreasing.
    pub fn record(&mut self, t_ns: f64, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match schema"
        );
        if let Some(&last) = self.times.last() {
            assert!(t_ns >= last, "samples must be recorded in time order");
        }
        self.times.push(t_ns);
        self.rows.push(values.to_vec());
    }

    /// Number of rows recorded.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows were recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterate `(t_ns, row)` in time order.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &[f64])> {
        self.times
            .iter()
            .zip(self.rows.iter())
            .map(|(&t, r)| (t, r.as_slice()))
    }

    /// The values of one column as `(t_ns, value)` pairs, by name.
    pub fn column(&self, name: &str) -> Option<Vec<(f64, f64)>> {
        let idx = self.columns.iter().position(|c| c == name)?;
        Some(
            self.times
                .iter()
                .zip(self.rows.iter())
                .map(|(&t, r)| (t, r[idx]))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_record_in_schema_order() {
        let mut s = SampleSeries::new(&["depth", "gbps"], 50.0);
        s.record(0.0, &[3.0, 1.5]);
        s.record(50.0, &[2.0, 2.5]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.period_ns(), 50.0);
        let depth = s.column("depth").unwrap();
        assert_eq!(depth, [(0.0, 3.0), (50.0, 2.0)]);
        assert!(s.column("missing").is_none());
        let all: Vec<(f64, Vec<f64>)> = s.iter().map(|(t, r)| (t, r.to_vec())).collect();
        assert_eq!(all[1], (50.0, vec![2.0, 2.5]));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut s = SampleSeries::new(&["a", "b"], 1.0);
        s.record(0.0, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_panics() {
        let mut s = SampleSeries::new(&["a"], 1.0);
        s.record(5.0, &[1.0]);
        s.record(4.0, &[1.0]);
    }
}
