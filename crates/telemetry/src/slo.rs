//! Online SLO tracking with multi-window burn rates.
//!
//! Each tenant class declares an objective — "`target` of jobs finish
//! under `latency_ns`" and optionally "windowed goodput stays above
//! `min_goodput_gbps`" — and the tracker watches completions stream in.
//! The health signal is the **burn rate**: the fraction of the error
//! budget being consumed, `bad_fraction / (1 − target)`. A burn rate of
//! 1.0 spends the budget exactly as fast as the objective allows; 10×
//! means the budget is gone in a tenth of the period.
//!
//! Alerting uses two windows (the Google-SRE multi-window idiom): the
//! *fast* window reacts quickly, the *slow* window confirms the
//! problem is sustained — a breach fires only when **both** exceed the
//! threshold, so a single slow job cannot page and a sustained
//! regression cannot hide. Breaches are edge-triggered instants (one
//! per excursion, not one per sample) so they can be dropped into a
//! Perfetto trace as markers; burn rates are additionally sampled into
//! a [`SampleSeries`] for counter tracks.
//!
//! Everything is deterministic: simulated-clock windows over recorded
//! completions, no wall time anywhere.

use crate::sampler::SampleSeries;

/// One class's objective and alerting policy.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Class label (report tables, trace track names).
    pub class: String,
    /// A job is *good* when its e2e latency is ≤ this, ns.
    pub latency_ns: f64,
    /// Objective: the fraction of jobs that must be good (e.g. 0.999).
    /// Must be < 1.0 — a zero error budget makes burn rates undefined.
    pub target: f64,
    /// Fast alerting window, ns.
    pub fast_window_ns: f64,
    /// Slow (confirming) window, ns.
    pub slow_window_ns: f64,
    /// Breach when *both* windows' burn rates exceed this.
    pub burn_threshold: f64,
    /// Goodput floor over the slow window, GB/s (0 disables the
    /// goodput objective).
    pub min_goodput_gbps: f64,
}

impl SloConfig {
    /// A latency objective with conventional alerting defaults: 50 µs /
    /// 600 µs windows, breach at 10× burn, no goodput floor.
    pub fn latency(class: &str, latency_ns: f64, target: f64) -> Self {
        assert!(target < 1.0, "a zero error budget cannot burn");
        SloConfig {
            class: class.to_string(),
            latency_ns,
            target,
            fast_window_ns: 50_000.0,
            slow_window_ns: 600_000.0,
            burn_threshold: 10.0,
            min_goodput_gbps: 0.0,
        }
    }

    /// Builder: add a goodput floor over the slow window.
    pub fn with_goodput_floor(mut self, gbps: f64) -> Self {
        self.min_goodput_gbps = gbps;
        self
    }

    /// Builder: override both alerting windows.
    pub fn with_windows(mut self, fast_ns: f64, slow_ns: f64) -> Self {
        assert!(fast_ns > 0.0 && slow_ns >= fast_ns);
        self.fast_window_ns = fast_ns;
        self.slow_window_ns = slow_ns;
        self
    }

    /// Builder: override the burn-rate breach threshold.
    pub fn with_burn_threshold(mut self, burn: f64) -> Self {
        self.burn_threshold = burn;
        self
    }
}

/// What objective a breach violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreachKind {
    /// Both burn-rate windows exceeded the threshold.
    Latency,
    /// Slow-window goodput fell below the floor (only while jobs are
    /// completing — an idle window is not a breach).
    Goodput,
}

impl BreachKind {
    /// Stable label.
    pub fn name(&self) -> &'static str {
        match self {
            BreachKind::Latency => "latency-burn",
            BreachKind::Goodput => "goodput-floor",
        }
    }
}

/// One edge-triggered breach instant.
#[derive(Debug, Clone)]
pub struct SloBreach {
    /// Sample timestamp at which the excursion began, ns.
    pub t_ns: f64,
    /// Index into the tracker's configs.
    pub class: usize,
    /// Which objective.
    pub kind: BreachKind,
    /// Fast-window burn rate at the breach sample.
    pub fast_burn: f64,
    /// Slow-window burn rate at the breach sample.
    pub slow_burn: f64,
}

/// One completion observation retained inside the windows.
#[derive(Debug, Clone, Copy)]
struct Obs {
    t_ns: f64,
    good: bool,
    bytes: u64,
}

/// The online tracker: feed completions with
/// [`observe`](Self::observe), evaluate with [`sample`](Self::sample)
/// at the telemetry cadence.
#[derive(Debug, Clone)]
pub struct SloTracker {
    cfgs: Vec<SloConfig>,
    window: Vec<Vec<Obs>>,
    in_breach: Vec<[bool; 2]>,
    breaches: Vec<SloBreach>,
    series: SampleSeries,
}

impl SloTracker {
    /// A tracker over `cfgs`, sampling burn rates every `sample_ns`.
    /// Columns per class: `{class}.burn_fast`, `{class}.burn_slow`,
    /// `{class}.goodput_gbps`.
    pub fn new(cfgs: Vec<SloConfig>, sample_ns: f64) -> Self {
        let names: Vec<String> = cfgs
            .iter()
            .flat_map(|c| {
                [
                    format!("{}.burn_fast", c.class),
                    format!("{}.burn_slow", c.class),
                    format!("{}.goodput_gbps", c.class),
                ]
            })
            .collect();
        let cols: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        SloTracker {
            window: vec![Vec::new(); cfgs.len()],
            in_breach: vec![[false; 2]; cfgs.len()],
            breaches: Vec::new(),
            series: SampleSeries::new(&cols, sample_ns),
            cfgs,
        }
    }

    /// The class configs, in column order.
    pub fn configs(&self) -> &[SloConfig] {
        &self.cfgs
    }

    /// Feed one job completion for `class` at `t_ns` with the job's
    /// e2e latency and payload bytes. Observations should arrive in
    /// roughly completion-time order; small reorderings (e.g. within
    /// one multi-shard poll batch) are tolerated — the window scans
    /// filter by timestamp rather than assuming sortedness.
    pub fn observe(&mut self, class: usize, t_ns: f64, latency_ns: f64, bytes: u64) {
        let good = latency_ns <= self.cfgs[class].latency_ns;
        self.window[class].push(Obs { t_ns, good, bytes });
    }

    /// Burn rates for `class` over `(fast, slow)` windows ending at
    /// `t_ns`, plus slow-window goodput in GB/s. Empty windows burn 0.
    pub fn rates(&self, class: usize, t_ns: f64) -> (f64, f64, f64) {
        let cfg = &self.cfgs[class];
        let budget = 1.0 - cfg.target;
        let mut fast = (0u64, 0u64); // (bad, total)
        let mut slow = (0u64, 0u64);
        let mut bytes = 0u64;
        for o in self.window[class].iter().rev() {
            if o.t_ns < t_ns - cfg.slow_window_ns {
                // Not `break`: a multi-shard poll batch records
                // completions slightly out of time order, so keep
                // filtering (the retained window is already pruned to
                // the slow horizon, so this stays O(window)).
                continue;
            }
            slow.1 += 1;
            if !o.good {
                slow.0 += 1;
            }
            bytes += o.bytes;
            if o.t_ns >= t_ns - cfg.fast_window_ns {
                fast.1 += 1;
                if !o.good {
                    fast.0 += 1;
                }
            }
        }
        let burn = |(bad, total): (u64, u64)| {
            if total == 0 {
                0.0
            } else {
                (bad as f64 / total as f64) / budget
            }
        };
        let goodput = bytes as f64 / cfg.slow_window_ns; // bytes/ns == GB/s
        (burn(fast), burn(slow), goodput)
    }

    /// Evaluate every class at `t_ns`: append one burn-rate row to the
    /// series and emit edge-triggered breach instants. Call at the
    /// telemetry sampling cadence, with non-decreasing `t_ns`.
    pub fn sample(&mut self, t_ns: f64) {
        let mut row = Vec::with_capacity(self.cfgs.len() * 3);
        for class in 0..self.cfgs.len() {
            // Prune observations older than the slow window first, so
            // memory stays bounded by throughput × window.
            let horizon = t_ns - self.cfgs[class].slow_window_ns;
            self.window[class].retain(|o| o.t_ns >= horizon);
            let (fast, slow, goodput) = self.rates(class, t_ns);
            row.extend([fast, slow, goodput]);
            let cfg = &self.cfgs[class];
            let latency_breach = fast > cfg.burn_threshold && slow > cfg.burn_threshold;
            let goodput_breach = cfg.min_goodput_gbps > 0.0
                && !self.window[class].is_empty()
                && goodput < cfg.min_goodput_gbps;
            for (slot, (breach, kind)) in [
                (latency_breach, BreachKind::Latency),
                (goodput_breach, BreachKind::Goodput),
            ]
            .into_iter()
            .enumerate()
            {
                if breach && !self.in_breach[class][slot] {
                    self.breaches.push(SloBreach {
                        t_ns,
                        class,
                        kind,
                        fast_burn: fast,
                        slow_burn: slow,
                    });
                }
                self.in_breach[class][slot] = breach;
            }
        }
        self.series.record(t_ns, &row);
    }

    /// Every breach instant emitted so far, in time order.
    pub fn breaches(&self) -> &[SloBreach] {
        &self.breaches
    }

    /// The sampled burn-rate/goodput series.
    pub fn series(&self) -> &SampleSeries {
        &self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(burn_threshold: f64) -> SloTracker {
        SloTracker::new(
            vec![SloConfig {
                class: "latency".into(),
                latency_ns: 1000.0,
                target: 0.9, // 10% error budget: burn = 10 × bad fraction
                fast_window_ns: 100.0,
                slow_window_ns: 1000.0,
                burn_threshold,
                min_goodput_gbps: 0.0,
            }],
            100.0,
        )
    }

    #[test]
    fn burn_rates_window_correctly() {
        let mut t = tracker(5.0);
        // 8 good + 2 bad in the slow window; the 2 bad are recent.
        for i in 0..8 {
            t.observe(0, i as f64 * 100.0, 500.0, 100);
        }
        t.observe(0, 950.0, 5000.0, 100);
        t.observe(0, 980.0, 5000.0, 100);
        let (fast, slow, goodput) = t.rates(0, 1000.0);
        // Fast window [900, 1000]: 2 bad of 2 → burn 1.0/0.1 = 10.
        assert!((fast - 10.0).abs() < 1e-12, "{fast}");
        // Slow window [0, 1000]: 2 bad of 10 → burn 0.2/0.1 = 2.
        assert!((slow - 2.0).abs() < 1e-12, "{slow}");
        // 1000 bytes over 1000 ns = 1 GB/s.
        assert!((goodput - 1.0).abs() < 1e-12, "{goodput}");
        // Empty window burns nothing.
        assert_eq!(t.rates(0, 1e9), (0.0, 0.0, 0.0));
    }

    #[test]
    fn breach_requires_both_windows_and_is_edge_triggered() {
        let mut t = tracker(5.0);
        // A lone bad job: fast window screams (1 of 1 bad → burn 10)
        // but the slow window holds (1 of 11 bad → burn < 1): no page.
        for i in 0..10 {
            t.observe(0, i as f64 * 100.0, 10.0, 1);
        }
        t.observe(0, 999.0, 9999.0, 1);
        t.sample(1000.0);
        assert!(t.breaches().is_empty(), "single slow job must not page");

        // A sustained regression: every job bad → both windows at 10.
        let mut t = tracker(5.0);
        for i in 0..20 {
            t.observe(0, 900.0 + i as f64 * 5.0, 9999.0, 1);
        }
        t.sample(1000.0);
        // The regression continues through the next sample: still in
        // breach, but edge-triggered — no second instant.
        for i in 0..20 {
            t.observe(0, 1000.0 + i as f64 * 5.0, 9999.0, 1);
        }
        t.sample(1100.0);
        assert_eq!(t.breaches().len(), 1, "edge-triggered, not level");
        let b = &t.breaches()[0];
        assert_eq!(b.t_ns, 1000.0);
        assert_eq!(b.kind, BreachKind::Latency);
        assert!(b.fast_burn > 5.0 && b.slow_burn > 5.0);

        // Recovery then relapse: a second excursion, a second instant.
        t.sample(5000.0); // windows empty: burn 0, breach clears
        for i in 0..20 {
            t.observe(0, 5400.0 + i as f64 * 5.0, 9999.0, 1);
        }
        t.sample(5500.0);
        assert_eq!(t.breaches().len(), 2);
    }

    #[test]
    fn goodput_floor_breaches_only_while_serving() {
        let cfg = SloConfig::latency("bulk", 1e9, 0.5)
            .with_goodput_floor(2.0)
            .with_windows(100.0, 1000.0);
        let mut t = SloTracker::new(vec![cfg], 100.0);
        // Idle: no observations → no goodput breach.
        t.sample(1000.0);
        assert!(t.breaches().is_empty());
        // Serving 1 GB/s against a 2 GB/s floor → breach.
        for i in 0..10 {
            t.observe(0, 1000.0 + i as f64 * 100.0, 10.0, 100);
        }
        t.sample(2000.0);
        assert_eq!(t.breaches().len(), 1);
        assert_eq!(t.breaches()[0].kind, BreachKind::Goodput);
    }

    #[test]
    fn series_has_three_columns_per_class() {
        let mut t = SloTracker::new(
            vec![
                SloConfig::latency("a", 100.0, 0.99),
                SloConfig::latency("b", 100.0, 0.9),
            ],
            50.0,
        );
        t.sample(0.0);
        t.sample(50.0);
        assert_eq!(t.series().len(), 2);
        assert_eq!(
            t.series().columns(),
            [
                "a.burn_fast",
                "a.burn_slow",
                "a.goodput_gbps",
                "b.burn_fast",
                "b.burn_slow",
                "b.goodput_gbps"
            ]
        );
        assert!(t.series().column("b.burn_slow").is_some());
    }

    #[test]
    #[should_panic(expected = "error budget")]
    fn perfect_target_is_rejected() {
        let _ = SloConfig::latency("x", 100.0, 1.0);
    }

    #[test]
    fn pruning_bounds_memory() {
        let mut t = tracker(5.0);
        for i in 0..10_000 {
            t.observe(0, i as f64, 1.0, 1);
            if i % 100 == 0 {
                t.sample(i as f64);
            }
        }
        // Slow window is 1000 ns: at most ~1100 observations retained.
        assert!(t.window[0].len() <= 1101, "{}", t.window[0].len());
    }
}
