//! BFS — level-synchronous breadth-first search on a CSR graph,
//! vertex-partitioned (the PrIM formulation: each level is one kernel
//! launch; DPUs expand the frontier for their vertex range and the host
//! merges the next frontier).

use crate::partition::{ranges, Xorshift};
use crate::suite::{FunctionalResult, PimWorkload, TransferProfile};

/// A CSR graph.
#[derive(Debug, Clone)]
pub struct Graph {
    /// Offsets into `adj` per vertex (n+1 entries).
    pub offsets: Vec<usize>,
    /// Flattened adjacency lists.
    pub adj: Vec<u32>,
}

impl Graph {
    /// A random graph with average degree `deg` over `n` vertices,
    /// augmented with a Hamiltonian-ish chain so everything is reachable.
    pub fn random(n: usize, deg: usize, rng: &mut Xorshift) -> Self {
        let mut offsets = vec![0usize];
        let mut adj = Vec::new();
        for v in 0..n {
            // Chain edge keeps the graph connected.
            if v + 1 < n {
                adj.push((v + 1) as u32);
            }
            for _ in 0..rng.below(2 * deg as u64) {
                adj.push(rng.below(n as u64) as u32);
            }
            offsets.push(adj.len());
        }
        Graph { offsets, adj }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Neighbours of `v`.
    pub fn neighbours(&self, v: usize) -> &[u32] {
        &self.adj[self.offsets[v]..self.offsets[v + 1]]
    }
}

/// Per-DPU kernel for one level: for frontier vertices within this DPU's
/// range, emit unvisited neighbours.
pub fn dpu_kernel(
    g: &Graph,
    range: std::ops::Range<usize>,
    frontier: &[u32],
    dist: &[u32],
) -> Vec<u32> {
    let mut next = Vec::new();
    for &v in frontier {
        let v = v as usize;
        if !range.contains(&v) {
            continue;
        }
        for &w in g.neighbours(v) {
            if dist[w as usize] == u32::MAX {
                next.push(w);
            }
        }
    }
    next
}

fn reference_bfs(g: &Graph, src: usize) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.n()];
    dist[src] = 0;
    let mut q = std::collections::VecDeque::from([src]);
    while let Some(v) = q.pop_front() {
        for &w in g.neighbours(v) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = dist[v] + 1;
                q.push_back(w as usize);
            }
        }
    }
    dist
}

/// Level-synchronous BFS.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bfs;

impl PimWorkload for Bfs {
    fn name(&self) -> &'static str {
        "BFS"
    }

    fn run_functional(&self, n_dpus: u32, seed: u64) -> FunctionalResult {
        let mut rng = Xorshift::new(seed);
        let g = Graph::random(2048, 3, &mut rng);
        let src = 0usize;

        let mut dist = vec![u32::MAX; g.n()];
        dist[src] = 0;
        let mut frontier: Vec<u32> = vec![src as u32];
        let mut level = 0u32;
        let parts = ranges(g.n(), n_dpus);
        while !frontier.is_empty() {
            level += 1;
            let mut next: Vec<u32> = Vec::new();
            for r in &parts {
                next.extend(dpu_kernel(&g, r.clone(), &frontier, &dist));
            }
            // Host merge: dedup and stamp distances.
            next.sort_unstable();
            next.dedup();
            for &w in &next {
                dist[w as usize] = level;
            }
            frontier = next;
        }
        let verified = dist == reference_bfs(&g, src);
        FunctionalResult {
            bytes_in: (g.offsets.len() * 8 + g.adj.len() * 4) as u64,
            bytes_out: (g.n() * 4) as u64,
            verified,
        }
    }

    fn profile(&self) -> TransferProfile {
        TransferProfile {
            in_bytes: 256 << 20,
            out_bytes: 64 << 20,
            dpu_rate_gbps: 0.06,
            fixed_kernel_ms: 4.0, // one launch per level
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_match_reference() {
        for n in [1, 4, 16] {
            assert!(Bfs.run_functional(n, 9).verified, "n = {n}");
        }
    }

    #[test]
    fn chain_graph_distances() {
        let g = Graph {
            offsets: vec![0, 1, 2, 2],
            adj: vec![1, 2],
        };
        assert_eq!(reference_bfs(&g, 0), vec![0, 1, 2]);
        let next = dpu_kernel(&g, 0..3, &[0], &[0, u32::MAX, u32::MAX]);
        assert_eq!(next, vec![1]);
    }
}
