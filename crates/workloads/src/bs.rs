//! BS — binary search: queries against a sorted array partitioned across
//! DPUs. The dominant cost is shipping the sorted array to PIM — the
//! paper's most extreme transfer-bound case (99.7 % of end-to-end time).

use crate::partition::{ranges, Xorshift};
use crate::suite::{FunctionalResult, PimWorkload, TransferProfile};

/// Sorted-array search: each DPU owns a contiguous key range and answers
/// the queries that fall inside it.
#[derive(Debug, Clone, Copy, Default)]
pub struct BinarySearch;

/// Per-DPU kernel: binary-search `queries` in `slice`; returns
/// `(query_index, position_within_slice)` for hits.
pub fn dpu_kernel(slice: &[u64], queries: &[(usize, u64)]) -> Vec<(usize, usize)> {
    queries
        .iter()
        .filter_map(|&(qi, q)| slice.binary_search(&q).ok().map(|pos| (qi, pos)))
        .collect()
}

impl PimWorkload for BinarySearch {
    fn name(&self) -> &'static str {
        "BS"
    }

    fn run_functional(&self, n_dpus: u32, seed: u64) -> FunctionalResult {
        let n = 1 << 14;
        let n_queries = 512;
        let mut rng = Xorshift::new(seed);
        // Strictly increasing keys.
        let mut keys: Vec<u64> = Vec::with_capacity(n);
        let mut acc = 0u64;
        for _ in 0..n {
            acc += 1 + rng.below(5);
            keys.push(acc);
        }
        // Half the queries hit, half miss.
        let queries: Vec<(usize, u64)> = (0..n_queries)
            .map(|qi| {
                let hit = qi % 2 == 0;
                let q = if hit {
                    keys[rng.below(n as u64) as usize]
                } else {
                    // Misses: beyond the maximum key.
                    acc + 1 + rng.below(100)
                };
                (qi, q)
            })
            .collect();

        // Each DPU searches its slice; the router sends a query to the
        // DPU whose key range covers it.
        let mut found = std::collections::HashMap::new();
        for r in ranges(n, n_dpus) {
            if r.is_empty() {
                continue;
            }
            let slice = &keys[r.clone()];
            let in_range: Vec<(usize, u64)> = queries
                .iter()
                .filter(|&&(_, q)| q >= slice[0] && q <= *slice.last().expect("nonempty"))
                .copied()
                .collect();
            for (qi, pos) in dpu_kernel(slice, &in_range) {
                found.insert(qi, r.start + pos);
            }
        }

        let verified = queries.iter().all(|&(qi, q)| match keys.binary_search(&q) {
            Ok(pos) => found.get(&qi) == Some(&pos),
            Err(_) => !found.contains_key(&qi),
        });
        FunctionalResult {
            bytes_in: (n as u64) * 8 + n_queries as u64 * 8,
            bytes_out: found.len() as u64 * 8,
            verified,
        }
    }

    fn profile(&self) -> TransferProfile {
        TransferProfile {
            in_bytes: (512 << 20) + (16 << 20),
            out_bytes: 16 << 20,
            // Probing touches O(log n) cache lines per query: almost no
            // kernel time relative to shipping the array.
            dpu_rate_gbps: 5.0,
            fixed_kernel_ms: 0.02,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses_verified() {
        for n in [1, 4, 33] {
            assert!(BinarySearch.run_functional(n, 77).verified, "n = {n}");
        }
    }

    #[test]
    fn bs_is_the_most_transfer_bound_workload() {
        // Kernel under 1 ms at 512 DPUs while the transfer is ~60 ms.
        let p = BinarySearch.profile();
        assert!(p.kernel_ms(512) < 1.0);
    }

    #[test]
    fn kernel_reports_hits_only() {
        let slice = [10u64, 20, 30];
        let qs = [(0usize, 20u64), (1, 25)];
        assert_eq!(dpu_kernel(&slice, &qs), vec![(0, 1)]);
    }
}
