//! GEMV — dense matrix-vector multiplication, rows partitioned per DPU.

use crate::partition::{ranges, Xorshift};
use crate::suite::{FunctionalResult, PimWorkload, TransferProfile};

/// `y = A x` with `A` row-partitioned across DPUs (each DPU receives its
/// row block plus the full `x`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Gemv;

/// Per-DPU kernel: multiply a row block against the shared vector.
pub fn dpu_kernel(rows: &[Vec<i64>], x: &[i64]) -> Vec<i64> {
    rows.iter()
        .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
        .collect()
}

impl PimWorkload for Gemv {
    fn name(&self) -> &'static str {
        "GEMV"
    }

    fn run_functional(&self, n_dpus: u32, seed: u64) -> FunctionalResult {
        let (m, n) = (256usize, 64usize);
        let mut rng = Xorshift::new(seed);
        let a: Vec<Vec<i64>> = (0..m)
            .map(|_| (0..n).map(|_| (rng.below(2000) as i64) - 1000).collect())
            .collect();
        let x: Vec<i64> = (0..n).map(|_| (rng.below(2000) as i64) - 1000).collect();

        let mut y = Vec::with_capacity(m);
        for r in ranges(m, n_dpus) {
            y.extend(dpu_kernel(&a[r], &x));
        }
        let reference = dpu_kernel(&a, &x);
        FunctionalResult {
            bytes_in: (m * n + n) as u64 * 8,
            bytes_out: m as u64 * 8,
            verified: y == reference,
        }
    }

    fn profile(&self) -> TransferProfile {
        TransferProfile {
            in_bytes: 512 << 20,
            out_bytes: 2 << 20,
            dpu_rate_gbps: 0.055,
            fixed_kernel_ms: 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies_and_counts_bytes() {
        let r = Gemv.run_functional(8, 11);
        assert!(r.verified);
        assert_eq!(r.bytes_out, 256 * 8);
    }

    #[test]
    fn kernel_matches_hand_computation() {
        let rows = vec![vec![1, 2], vec![3, 4]];
        assert_eq!(dpu_kernel(&rows, &[10, 100]), vec![210, 430]);
    }
}
