//! HST-S / HST-L — histogram with small and large bin counts.
//!
//! Each DPU builds a private histogram of its slice; the host reduces.
//! HST-L's larger bin table spills out of the DPUs' working memory and
//! runs slower — captured by its lower effective rate.

use crate::partition::{ranges, Xorshift};
use crate::suite::{FunctionalResult, PimWorkload, TransferProfile};

/// Per-DPU kernel: histogram one slice into `bins` buckets.
pub fn dpu_kernel(slice: &[u32], bins: usize) -> Vec<u64> {
    let mut h = vec![0u64; bins];
    for &x in slice {
        h[x as usize % bins] += 1;
    }
    h
}

fn run(bins: usize, n_dpus: u32, seed: u64) -> FunctionalResult {
    let n = 1 << 14;
    let mut rng = Xorshift::new(seed);
    let input = rng.vec_u32(n);

    let mut merged = vec![0u64; bins];
    for r in ranges(n, n_dpus) {
        for (b, c) in dpu_kernel(&input[r], bins).into_iter().enumerate() {
            merged[b] += c;
        }
    }
    let reference = dpu_kernel(&input, bins);
    FunctionalResult {
        bytes_in: n as u64 * 4,
        bytes_out: bins as u64 * 8 * n_dpus as u64,
        verified: merged == reference && merged.iter().sum::<u64>() == n as u64,
    }
}

/// Small-bin histogram (256 bins — fits in DPU WRAM).
#[derive(Debug, Clone, Copy, Default)]
pub struct HistogramSmall;

impl PimWorkload for HistogramSmall {
    fn name(&self) -> &'static str {
        "HST-S"
    }

    fn run_functional(&self, n_dpus: u32, seed: u64) -> FunctionalResult {
        run(256, n_dpus, seed)
    }

    fn profile(&self) -> TransferProfile {
        TransferProfile {
            in_bytes: 384 << 20,
            out_bytes: 1 << 20,
            dpu_rate_gbps: 0.06,
            fixed_kernel_ms: 0.5,
        }
    }
}

/// Large-bin histogram (64 Ki bins — spills to MRAM, slower updates).
#[derive(Debug, Clone, Copy, Default)]
pub struct HistogramLarge;

impl PimWorkload for HistogramLarge {
    fn name(&self) -> &'static str {
        "HST-L"
    }

    fn run_functional(&self, n_dpus: u32, seed: u64) -> FunctionalResult {
        run(1 << 16, n_dpus, seed)
    }

    fn profile(&self) -> TransferProfile {
        TransferProfile {
            in_bytes: 384 << 20,
            out_bytes: 32 << 20,
            dpu_rate_gbps: 0.035,
            fixed_kernel_ms: 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_verify() {
        for n in [1, 8, 64] {
            assert!(HistogramSmall.run_functional(n, 1).verified);
            assert!(HistogramLarge.run_functional(n, 1).verified);
        }
    }

    #[test]
    fn large_is_slower_than_small() {
        assert!(HistogramLarge.profile().kernel_ms(512) > HistogramSmall.profile().kernel_ms(512));
    }

    #[test]
    fn kernel_counts_everything() {
        let h = dpu_kernel(&[0, 1, 1, 255, 256], 256);
        assert_eq!(h[0], 2); // 0 and 256
        assert_eq!(h[1], 2);
        assert_eq!(h[255], 1);
    }
}
