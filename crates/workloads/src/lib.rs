//! PrIM-style PIM workload suite (the 16 memory-intensive workloads of
//! the paper's Fig. 16) plus the data-transfer microbenchmarks of §V.
//!
//! Every workload has a *functional* implementation — input generation,
//! partitioning across DPUs, a per-DPU kernel executed on the host, a
//! merge step and verification against a sequential reference — and a
//! *profile* (input/output transfer footprints and an analytic kernel-
//! time model standing in for the paper's wall-clock measurements on real
//! UPMEM hardware; see DESIGN.md §4).
//!
//! ```
//! use pim_workloads::suite;
//! let all = suite::prim_suite();
//! assert_eq!(all.len(), 16);
//! for w in &all {
//!     let r = w.run_functional(16, 0xC0FFEE);
//!     assert!(r.verified, "{} failed verification", w.name());
//! }
//! ```

pub mod bfs;
pub mod bs;
pub mod gemv;
pub mod hst;
pub mod microbench;
pub mod mlp;
pub mod nw;
pub mod partition;
pub mod red;
pub mod scan;
pub mod sel;
pub mod spmv;
pub mod suite;
pub mod trns;
pub mod ts;
pub mod uni;
pub mod va;

pub use suite::{
    job_shapes, max_in_bytes, prim_suite, FunctionalResult, JobShape, PimWorkload, TransferProfile,
};
