//! The §V microbenchmarks: CPU-DPU (the PrIM DRAM↔PIM transfer
//! microbenchmark) and the AVX-stream `memcpy`.
//!
//! These carry no kernels — they exist to measure transfer throughput and
//! feed Fig. 6/8/14/15. The structs here document their parameter spaces;
//! the actual simulation is driven by `pim_sim::run_transfer` /
//! `pim_sim::run_memcpy`.

use serde::{Deserialize, Serialize};

/// The transfer sizes swept in Fig. 15.
pub const FIG15_SIZES_MB: [u64; 5] = [1, 4, 16, 64, 256];

/// The CPU-DPU transfer microbenchmark from PrIM (§V): a bulk
/// `dpu_push_xfer` over all PIM cores, in one direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuDpuMicrobench {
    /// Total bytes moved.
    pub total_bytes: u64,
    /// PIM cores targeted.
    pub n_cores: u32,
}

impl CpuDpuMicrobench {
    /// The paper's sweep point at `mb` megabytes over all 512 cores.
    ///
    /// # Panics
    ///
    /// Panics if `mb` is not one of the Fig. 15 sizes.
    pub fn fig15(mb: u64) -> Self {
        assert!(
            FIG15_SIZES_MB.contains(&mb),
            "Fig. 15 sweeps {FIG15_SIZES_MB:?} MB, got {mb}"
        );
        CpuDpuMicrobench {
            total_bytes: mb << 20,
            n_cores: 512,
        }
    }

    /// Per-core bytes.
    pub fn per_core(&self) -> u64 {
        self.total_bytes / self.n_cores as u64
    }
}

/// The multi-threaded AVX-512 streaming `memcpy` microbenchmark (§V,
/// `_mm512_stream_si512`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemcpyMicrobench {
    /// Bytes copied.
    pub bytes: u64,
    /// Software threads.
    pub threads: u32,
}

impl Default for MemcpyMicrobench {
    fn default() -> Self {
        MemcpyMicrobench {
            bytes: 64 << 20,
            threads: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig15_points() {
        let m = CpuDpuMicrobench::fig15(64);
        assert_eq!(m.per_core(), (64 << 20) / 512);
    }

    #[test]
    #[should_panic(expected = "Fig. 15 sweeps")]
    fn rejects_off_sweep_sizes() {
        CpuDpuMicrobench::fig15(3);
    }
}
