//! MLP — multi-layer perceptron inference, neurons partitioned per DPU.

use crate::partition::{ranges, Xorshift};
use crate::suite::{FunctionalResult, PimWorkload, TransferProfile};

/// Three fully-connected layers with ReLU; each layer's output neurons
/// are partitioned across DPUs (every DPU holds its rows of the weight
/// matrix plus the full input activation).
#[derive(Debug, Clone, Copy, Default)]
pub struct Mlp;

/// Per-DPU kernel: compute `rows` of one layer (`y = relu(W x)`).
pub fn dpu_kernel(weights: &[Vec<i64>], x: &[i64]) -> Vec<i64> {
    weights
        .iter()
        .map(|row| {
            let v: i64 = row.iter().zip(x).map(|(w, a)| w * a).sum();
            v.max(0)
        })
        .collect()
}

fn layer(weights: &[Vec<i64>], x: &[i64], n_dpus: u32) -> Vec<i64> {
    let mut y = Vec::with_capacity(weights.len());
    for r in ranges(weights.len(), n_dpus) {
        y.extend(dpu_kernel(&weights[r], x));
    }
    y
}

impl PimWorkload for Mlp {
    fn name(&self) -> &'static str {
        "MLP"
    }

    fn run_functional(&self, n_dpus: u32, seed: u64) -> FunctionalResult {
        let dims = [96usize, 128, 64, 32];
        let mut rng = Xorshift::new(seed);
        let mut weights = Vec::new();
        for l in 0..dims.len() - 1 {
            let w: Vec<Vec<i64>> = (0..dims[l + 1])
                .map(|_| (0..dims[l]).map(|_| rng.below(7) as i64 - 3).collect())
                .collect();
            weights.push(w);
        }
        let x0: Vec<i64> = (0..dims[0]).map(|_| rng.below(5) as i64).collect();

        // PIM execution: layer by layer, partitioned.
        let mut act = x0.clone();
        for w in &weights {
            act = layer(w, &act, n_dpus);
        }
        // Reference: single-DPU execution.
        let mut reference = x0;
        for w in &weights {
            reference = layer(w, &reference, 1);
        }
        let weight_bytes: u64 = weights
            .iter()
            .map(|w| (w.len() * w[0].len() * 8) as u64)
            .sum();
        FunctionalResult {
            bytes_in: weight_bytes + dims[0] as u64 * 8,
            bytes_out: *dims.last().expect("nonempty") as u64 * 8,
            verified: act == reference,
        }
    }

    fn profile(&self) -> TransferProfile {
        TransferProfile {
            in_bytes: 512 << 20,
            out_bytes: 4 << 20,
            dpu_rate_gbps: 0.07,
            fixed_kernel_ms: 1.5, // three launches
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioned_inference_matches_reference() {
        for n in [1, 2, 16, 64] {
            assert!(Mlp.run_functional(n, 31).verified, "n = {n}");
        }
    }

    #[test]
    fn relu_clamps() {
        let w = vec![vec![1, -1], vec![-2, -2]];
        assert_eq!(dpu_kernel(&w, &[3, 5]), vec![0, 0]);
        assert_eq!(dpu_kernel(&w, &[5, 3]), vec![2, 0]);
    }
}
