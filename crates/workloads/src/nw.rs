//! NW — Needleman-Wunsch global sequence alignment (batched pairs).
//!
//! PrIM's NW parallelizes the anti-diagonals of one big DP matrix; the
//! equivalent throughput shape with simpler mechanics is a *batch* of
//! independent alignments partitioned across DPUs (common in
//! bioinformatics pipelines). Each DPU aligns its pairs with the full
//! O(nm) dynamic program; the host gathers the scores.

use crate::partition::{ranges, Xorshift};
use crate::suite::{FunctionalResult, PimWorkload, TransferProfile};

const MATCH: i64 = 2;
const MISMATCH: i64 = -1;
const GAP: i64 = -2;

/// Per-DPU kernel: NW alignment score of one pair.
pub fn dpu_kernel(a: &[u8], b: &[u8]) -> i64 {
    let (n, m) = (a.len(), b.len());
    let mut prev: Vec<i64> = (0..=m as i64).map(|j| j * GAP).collect();
    let mut cur = vec![0i64; m + 1];
    for i in 1..=n {
        cur[0] = i as i64 * GAP;
        for j in 1..=m {
            let sub = prev[j - 1]
                + if a[i - 1] == b[j - 1] {
                    MATCH
                } else {
                    MISMATCH
                };
            cur[j] = sub.max(prev[j] + GAP).max(cur[j - 1] + GAP);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Batched global alignment.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeedlemanWunsch;

impl PimWorkload for NeedlemanWunsch {
    fn name(&self) -> &'static str {
        "NW"
    }

    fn run_functional(&self, n_dpus: u32, seed: u64) -> FunctionalResult {
        let pairs = 96usize;
        let len = 48usize;
        let mut rng = Xorshift::new(seed);
        let mk = |rng: &mut Xorshift| -> Vec<u8> {
            (0..len).map(|_| b"ACGT"[rng.below(4) as usize]).collect()
        };
        let batch: Vec<(Vec<u8>, Vec<u8>)> =
            (0..pairs).map(|_| (mk(&mut rng), mk(&mut rng))).collect();

        let mut scores = vec![0i64; pairs];
        for r in ranges(pairs, n_dpus) {
            for i in r {
                scores[i] = dpu_kernel(&batch[i].0, &batch[i].1);
            }
        }
        let reference: Vec<i64> = batch.iter().map(|(a, b)| dpu_kernel(a, b)).collect();
        // Sanity anchor: aligning a sequence with itself scores len*MATCH.
        let self_score = dpu_kernel(&batch[0].0, &batch[0].0);
        FunctionalResult {
            bytes_in: (pairs * 2 * len) as u64,
            bytes_out: (pairs * 8) as u64,
            verified: scores == reference && self_score == (len as i64) * MATCH,
        }
    }

    fn profile(&self) -> TransferProfile {
        TransferProfile {
            in_bytes: 128 << 20,
            out_bytes: 64 << 20,
            dpu_rate_gbps: 0.025,
            fixed_kernel_ms: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_alignment_verifies() {
        for n in [1, 4, 24] {
            assert!(NeedlemanWunsch.run_functional(n, 12).verified, "n = {n}");
        }
    }

    #[test]
    fn alignment_scores_are_sensible() {
        assert_eq!(dpu_kernel(b"ACGT", b"ACGT"), 8);
        // One substitution.
        assert_eq!(dpu_kernel(b"ACGT", b"AGGT"), 3 * MATCH + MISMATCH);
        // Pure gaps.
        assert_eq!(dpu_kernel(b"AA", b""), 2 * GAP);
    }
}
