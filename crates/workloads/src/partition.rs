//! Partitioning helpers shared by the workloads.

/// Split `n` items into `parts` balanced contiguous ranges (the standard
/// PrIM partitioning: each DPU gets a contiguous slice, sized as evenly
/// as possible).
pub fn ranges(n: usize, parts: u32) -> Vec<std::ops::Range<usize>> {
    let parts = parts as usize;
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// A simple deterministic xorshift generator for workload inputs (keeps
/// the crate independent of `rand` for reproducibility-critical paths).
#[derive(Debug, Clone)]
pub struct Xorshift(u64);

impl Xorshift {
    /// Seeded generator (seed 0 is mapped to a nonzero state).
    pub fn new(seed: u64) -> Self {
        Xorshift(seed | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    /// A vector of `n` `u32`s.
    pub fn vec_u32(&mut self, n: usize) -> Vec<u32> {
        (0..n).map(|_| self.next_u64() as u32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_everything_once() {
        let rs = ranges(103, 8);
        assert_eq!(rs.len(), 8);
        assert_eq!(rs[0].start, 0);
        assert_eq!(rs.last().unwrap().end, 103);
        let total: usize = rs.iter().map(|r| r.len()).sum();
        assert_eq!(total, 103);
        // Balanced within 1.
        let min = rs.iter().map(|r| r.len()).min().unwrap();
        let max = rs.iter().map(|r| r.len()).max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn ranges_with_fewer_items_than_parts() {
        let rs = ranges(3, 8);
        let nonempty = rs.iter().filter(|r| !r.is_empty()).count();
        assert_eq!(nonempty, 3);
        assert_eq!(rs.last().unwrap().end, 3);
    }

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = Xorshift::new(42);
        let mut b = Xorshift::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert!(Xorshift::new(7).below(10) < 10);
    }
}
