//! RED — global reduction (sum).

use crate::partition::{ranges, Xorshift};
use crate::suite::{FunctionalResult, PimWorkload, TransferProfile};

/// Tree reduction: each DPU sums its slice, the host sums the partials.
#[derive(Debug, Clone, Copy, Default)]
pub struct Reduction;

/// Per-DPU kernel: sum a slice.
pub fn dpu_kernel(slice: &[u32]) -> u64 {
    slice.iter().map(|&x| x as u64).sum()
}

impl PimWorkload for Reduction {
    fn name(&self) -> &'static str {
        "RED"
    }

    fn run_functional(&self, n_dpus: u32, seed: u64) -> FunctionalResult {
        let n = 1 << 15;
        let mut rng = Xorshift::new(seed);
        let input = rng.vec_u32(n);
        let total: u64 = ranges(n, n_dpus)
            .into_iter()
            .map(|r| dpu_kernel(&input[r]))
            .sum();
        FunctionalResult {
            bytes_in: n as u64 * 4,
            bytes_out: n_dpus as u64 * 8,
            verified: total == dpu_kernel(&input),
        }
    }

    fn profile(&self) -> TransferProfile {
        TransferProfile {
            in_bytes: 512 << 20,
            out_bytes: 1 << 20,
            dpu_rate_gbps: 0.1,
            fixed_kernel_ms: 0.3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioned_sum_matches() {
        for n in [1, 13, 64] {
            assert!(Reduction.run_functional(n, 5).verified, "n = {n}");
        }
    }

    #[test]
    fn kernel_sums() {
        assert_eq!(dpu_kernel(&[u32::MAX, 1]), u32::MAX as u64 + 1);
    }
}
