//! SCAN-SSA / SCAN-RSS — exclusive prefix sum, two PrIM strategies.
//!
//! * **SSA** (scan-scan-add): every DPU scans its slice immediately, the
//!   host scans the per-DPU totals, and a second kernel adds each DPU's
//!   base offset.
//! * **RSS** (reduce-scan-scan): every DPU first only *reduces* its
//!   slice, the host scans the totals, and a single second kernel does
//!   the local scan seeded with the base offset (fewer MRAM passes —
//!   faster, hence the different profile).
//!
//! Both produce identical results; the tests assert that equivalence.

use crate::partition::{ranges, Xorshift};
use crate::suite::{FunctionalResult, PimWorkload, TransferProfile};

/// Per-DPU local exclusive scan from `base`; returns (scanned, total).
pub fn dpu_scan(slice: &[u32], base: u64) -> (Vec<u64>, u64) {
    let mut out = Vec::with_capacity(slice.len());
    let mut acc = base;
    for &x in slice {
        out.push(acc);
        acc += x as u64;
    }
    (out, acc - base)
}

fn host_reference(input: &[u32]) -> Vec<u64> {
    dpu_scan(input, 0).0
}

fn run_ssa(n_dpus: u32, seed: u64) -> FunctionalResult {
    let n = 1 << 14;
    let mut rng = Xorshift::new(seed);
    let input = rng.vec_u32(n);
    // Kernel 1: local scans (from zero) + totals.
    let parts: Vec<(Vec<u64>, u64)> = ranges(n, n_dpus)
        .into_iter()
        .map(|r| dpu_scan(&input[r], 0))
        .collect();
    // Host: exclusive scan of totals.
    let mut bases = Vec::with_capacity(parts.len());
    let mut acc = 0u64;
    for (_, total) in &parts {
        bases.push(acc);
        acc += total;
    }
    // Kernel 2: add the base offset.
    let mut out = Vec::with_capacity(n);
    for ((scanned, _), base) in parts.into_iter().zip(bases) {
        out.extend(scanned.into_iter().map(|v| v + base));
    }
    FunctionalResult {
        bytes_in: n as u64 * 4,
        bytes_out: n as u64 * 8,
        verified: out == host_reference(&input),
    }
}

fn run_rss(n_dpus: u32, seed: u64) -> FunctionalResult {
    let n = 1 << 14;
    let mut rng = Xorshift::new(seed);
    let input = rng.vec_u32(n);
    let rs = ranges(n, n_dpus);
    // Kernel 1: reduce only.
    let totals: Vec<u64> = rs
        .iter()
        .map(|r| input[r.clone()].iter().map(|&x| x as u64).sum())
        .collect();
    // Host scan of totals.
    let mut bases = Vec::with_capacity(totals.len());
    let mut acc = 0u64;
    for t in &totals {
        bases.push(acc);
        acc += t;
    }
    // Kernel 2: local scan seeded with the base.
    let mut out = Vec::with_capacity(n);
    for (r, base) in rs.into_iter().zip(bases) {
        out.extend(dpu_scan(&input[r], base).0);
    }
    FunctionalResult {
        bytes_in: n as u64 * 4,
        bytes_out: n as u64 * 8,
        verified: out == host_reference(&input),
    }
}

/// Scan-scan-add.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanSsa;

impl PimWorkload for ScanSsa {
    fn name(&self) -> &'static str {
        "SCAN-SSA"
    }

    fn run_functional(&self, n_dpus: u32, seed: u64) -> FunctionalResult {
        run_ssa(n_dpus, seed)
    }

    fn profile(&self) -> TransferProfile {
        TransferProfile {
            in_bytes: 256 << 20,
            out_bytes: 256 << 20,
            dpu_rate_gbps: 0.04,
            fixed_kernel_ms: 1.0,
        }
    }
}

/// Reduce-scan-scan.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanRss;

impl PimWorkload for ScanRss {
    fn name(&self) -> &'static str {
        "SCAN-RSS"
    }

    fn run_functional(&self, n_dpus: u32, seed: u64) -> FunctionalResult {
        run_rss(n_dpus, seed)
    }

    fn profile(&self) -> TransferProfile {
        TransferProfile {
            in_bytes: 256 << 20,
            out_bytes: 256 << 20,
            dpu_rate_gbps: 0.05,
            fixed_kernel_ms: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_strategies_verify() {
        for n in [1, 3, 17, 64] {
            assert!(ScanSsa.run_functional(n, 8).verified, "SSA n = {n}");
            assert!(ScanRss.run_functional(n, 8).verified, "RSS n = {n}");
        }
    }

    #[test]
    fn rss_kernel_is_faster_per_byte() {
        assert!(ScanRss.profile().kernel_ms(512) < ScanSsa.profile().kernel_ms(512));
    }

    #[test]
    fn dpu_scan_is_exclusive() {
        let (s, total) = dpu_scan(&[3, 4, 5], 10);
        assert_eq!(s, vec![10, 13, 17]);
        assert_eq!(total, 12);
    }
}
