//! SEL — stream compaction (select elements matching a predicate,
//! preserving order).

use crate::partition::{ranges, Xorshift};
use crate::suite::{FunctionalResult, PimWorkload, TransferProfile};

/// Keep even elements (PrIM's SEL predicate), order-preserving: each DPU
/// compacts its slice, the host concatenates in partition order.
#[derive(Debug, Clone, Copy, Default)]
pub struct Select;

/// The predicate.
#[inline]
pub fn keep(x: u32) -> bool {
    x.is_multiple_of(2)
}

/// Per-DPU kernel: compact one slice.
pub fn dpu_kernel(slice: &[u32]) -> Vec<u32> {
    slice.iter().copied().filter(|&x| keep(x)).collect()
}

impl PimWorkload for Select {
    fn name(&self) -> &'static str {
        "SEL"
    }

    fn run_functional(&self, n_dpus: u32, seed: u64) -> FunctionalResult {
        let n = 1 << 14;
        let mut rng = Xorshift::new(seed);
        let input = rng.vec_u32(n);

        let mut out = Vec::new();
        let mut bytes_out = 0u64;
        for r in ranges(n, n_dpus) {
            let part = dpu_kernel(&input[r]);
            bytes_out += part.len() as u64 * 4;
            out.extend(part);
        }
        let reference = dpu_kernel(&input);
        FunctionalResult {
            bytes_in: n as u64 * 4,
            bytes_out,
            verified: out == reference,
        }
    }

    fn profile(&self) -> TransferProfile {
        TransferProfile {
            in_bytes: 512 << 20,
            out_bytes: 256 << 20,
            dpu_rate_gbps: 0.08,
            fixed_kernel_ms: 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_preserved_across_partitions() {
        for n in [1, 5, 64] {
            let r = Select.run_functional(n, 99);
            assert!(r.verified, "n = {n}");
            // Roughly half the elements survive.
            assert!(r.bytes_out > r.bytes_in / 4 && r.bytes_out < 3 * r.bytes_in / 4);
        }
    }

    #[test]
    fn kernel_filters() {
        assert_eq!(dpu_kernel(&[1, 2, 3, 4]), vec![2, 4]);
    }
}
