//! SpMV — sparse matrix-vector multiplication (CSR), row-partitioned.

use crate::partition::{ranges, Xorshift};
use crate::suite::{FunctionalResult, PimWorkload, TransferProfile};

/// A CSR matrix.
#[derive(Debug, Clone)]
pub struct Csr {
    /// Row pointers (`rows + 1` entries).
    pub row_ptr: Vec<usize>,
    /// Column indices per nonzero.
    pub col_idx: Vec<usize>,
    /// Values per nonzero.
    pub values: Vec<i64>,
    /// Number of columns.
    pub cols: usize,
}

impl Csr {
    /// A random matrix with ~`nnz_per_row` nonzeros per row.
    pub fn random(rows: usize, cols: usize, nnz_per_row: usize, rng: &mut Xorshift) -> Self {
        let mut row_ptr = vec![0usize];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for _ in 0..rows {
            let nnz = 1 + rng.below(2 * nnz_per_row as u64) as usize;
            let mut cols_this: Vec<usize> =
                (0..nnz).map(|_| rng.below(cols as u64) as usize).collect();
            cols_this.sort_unstable();
            cols_this.dedup();
            for c in cols_this {
                col_idx.push(c);
                values.push(rng.below(200) as i64 - 100);
            }
            row_ptr.push(col_idx.len());
        }
        Csr {
            row_ptr,
            col_idx,
            values,
            cols,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Multiply rows `range` against `x` (the per-DPU kernel).
    pub fn spmv_rows(&self, range: std::ops::Range<usize>, x: &[i64]) -> Vec<i64> {
        range
            .map(|r| {
                (self.row_ptr[r]..self.row_ptr[r + 1])
                    .map(|k| self.values[k] * x[self.col_idx[k]])
                    .sum()
            })
            .collect()
    }
}

/// CSR SpMV, rows partitioned per DPU, full `x` broadcast (the PrIM
/// SpMV layout).
#[derive(Debug, Clone, Copy, Default)]
pub struct Spmv;

impl PimWorkload for Spmv {
    fn name(&self) -> &'static str {
        "SpMV"
    }

    fn run_functional(&self, n_dpus: u32, seed: u64) -> FunctionalResult {
        let mut rng = Xorshift::new(seed);
        let m = Csr::random(512, 256, 8, &mut rng);
        let x: Vec<i64> = (0..m.cols).map(|_| rng.below(100) as i64).collect();

        let mut y = Vec::with_capacity(m.rows());
        for r in ranges(m.rows(), n_dpus) {
            y.extend(m.spmv_rows(r, &x));
        }
        let reference = m.spmv_rows(0..m.rows(), &x);
        let nnz_bytes = (m.values.len() * 8 + m.col_idx.len() * 8) as u64;
        FunctionalResult {
            bytes_in: nnz_bytes + (m.row_ptr.len() * 8) as u64 + (m.cols * 8) as u64,
            bytes_out: m.rows() as u64 * 8,
            verified: y == reference,
        }
    }

    fn profile(&self) -> TransferProfile {
        TransferProfile {
            in_bytes: 400 << 20,
            out_bytes: 2 << 20,
            dpu_rate_gbps: 0.04,
            fixed_kernel_ms: 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies_against_reference() {
        for n in [1, 7, 32] {
            assert!(Spmv.run_functional(n, 123).verified, "n = {n}");
        }
    }

    #[test]
    fn csr_shape_is_consistent() {
        let mut rng = Xorshift::new(5);
        let m = Csr::random(100, 50, 4, &mut rng);
        assert_eq!(m.rows(), 100);
        assert_eq!(*m.row_ptr.last().unwrap(), m.values.len());
        assert!(m.col_idx.iter().all(|&c| c < 50));
    }
}
