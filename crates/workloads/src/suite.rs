//! The workload trait, transfer profiles and the assembled PrIM suite.

use serde::{Deserialize, Serialize};

/// Result of a functional (small-scale) workload run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FunctionalResult {
    /// Bytes shipped DRAM→PIM during the run.
    pub bytes_in: u64,
    /// Bytes shipped PIM→DRAM during the run.
    pub bytes_out: u64,
    /// Whether the merged PIM output matched the sequential reference.
    pub verified: bool,
}

/// Paper-scale transfer/kernel footprint of one workload (drives the
/// Fig. 16 end-to-end harness).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferProfile {
    /// Total DRAM→PIM bytes.
    pub in_bytes: u64,
    /// Total PIM→DRAM bytes.
    pub out_bytes: u64,
    /// Effective per-DPU processing rate in GB/s (MRAM streaming plus
    /// arithmetic; real DPUs sustain 0.05–0.6 GB/s depending on the
    /// operation mix — PrIM's published characterization).
    pub dpu_rate_gbps: f64,
    /// Fixed kernel overhead (launch/sync), ms.
    pub fixed_kernel_ms: f64,
}

impl TransferProfile {
    /// Kernel wall-clock time in milliseconds on `n_dpus` DPUs: the
    /// per-DPU share of the footprint at the effective rate (SPMD — the
    /// slowest DPU bounds the launch; shares are balanced).
    pub fn kernel_ms(&self, n_dpus: u32) -> f64 {
        let per_dpu = (self.in_bytes + self.out_bytes) as f64 / n_dpus as f64;
        self.fixed_kernel_ms + per_dpu / (self.dpu_rate_gbps * 1e6)
    }
}

/// The transfer-job *shape* of one suite workload: the input/output
/// footprint a serving runtime samples job sizes from, detached from the
/// workload's functional machinery (cheap to copy into traffic
/// generators).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobShape {
    /// Workload name ("VA", "BS", ...).
    pub name: &'static str,
    /// Paper-scale DRAM→PIM input bytes.
    pub in_bytes: u64,
    /// Paper-scale PIM→DRAM output bytes.
    pub out_bytes: u64,
}

impl JobShape {
    /// Per-PIM-core input bytes for a simulation-scale job: the shape's
    /// paper-scale input is rescaled so the suite's largest input
    /// (`suite_max` — see [`max_in_bytes`]) maps to `cap_bytes`, split
    /// over `n_cores`, and quantized to a nonzero multiple of the 64 B
    /// line — always a valid `size_per_pim`, preserving the suite's
    /// relative size diversity.
    ///
    /// # Panics
    ///
    /// Panics if `suite_max` or `n_cores` is zero.
    pub fn scaled_per_core(&self, suite_max: u64, cap_bytes: u64, n_cores: u32) -> u64 {
        assert!(suite_max > 0, "suite_max must be positive");
        assert!(n_cores > 0, "a job must target at least one PIM core");
        let scaled = (self.in_bytes as u128 * cap_bytes as u128 / suite_max as u128) as u64;
        (scaled / n_cores as u64 / 64 * 64).max(64)
    }
}

/// The largest input footprint in a shape catalog (the normalization
/// anchor for [`JobShape::scaled_per_core`]).
///
/// # Panics
///
/// Panics if `shapes` is empty.
pub fn max_in_bytes(shapes: &[JobShape]) -> u64 {
    shapes
        .iter()
        .map(|s| s.in_bytes)
        .max()
        .expect("non-empty shape catalog")
}

/// The job-shape catalog of the PrIM suite, in Fig. 16 order — the input
/// distribution a transfer-queue runtime draws job sizes from.
pub fn job_shapes() -> Vec<JobShape> {
    prim_suite()
        .iter()
        .map(|w| {
            let p = w.profile();
            JobShape {
                name: w.name(),
                in_bytes: p.in_bytes,
                out_bytes: p.out_bytes,
            }
        })
        .collect()
}

/// A PrIM workload: functional execution plus its paper-scale profile.
pub trait PimWorkload: Send + Sync {
    /// Short name as it appears in Fig. 16 ("VA", "BS", ...).
    fn name(&self) -> &'static str;

    /// Run the workload functionally at test scale on `n_dpus` DPUs with
    /// deterministic `seed`: generate inputs, partition, execute per-DPU
    /// kernels, merge, verify against a host reference.
    fn run_functional(&self, n_dpus: u32, seed: u64) -> FunctionalResult;

    /// The paper-scale footprint for the end-to-end evaluation.
    fn profile(&self) -> TransferProfile;
}

/// The 16 PrIM workloads in the order of Fig. 16.
pub fn prim_suite() -> Vec<Box<dyn PimWorkload>> {
    vec![
        Box::new(crate::bfs::Bfs),
        Box::new(crate::bs::BinarySearch),
        Box::new(crate::gemv::Gemv),
        Box::new(crate::hst::HistogramLarge),
        Box::new(crate::hst::HistogramSmall),
        Box::new(crate::mlp::Mlp),
        Box::new(crate::nw::NeedlemanWunsch),
        Box::new(crate::red::Reduction),
        Box::new(crate::scan::ScanRss),
        Box::new(crate::scan::ScanSsa),
        Box::new(crate::sel::Select),
        Box::new(crate::spmv::Spmv),
        Box::new(crate::trns::Transpose),
        Box::new(crate::ts::TimeSeries),
        Box::new(crate::uni::Unique),
        Box::new(crate::va::VectorAdd),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_16_uniquely_named_workloads() {
        let s = prim_suite();
        assert_eq!(s.len(), 16);
        let names: std::collections::HashSet<&str> = s.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn profiles_are_sane() {
        for w in prim_suite() {
            let p = w.profile();
            assert!(p.in_bytes > 0, "{}", w.name());
            assert!(p.dpu_rate_gbps > 0.0, "{}", w.name());
            assert!(p.kernel_ms(512) > 0.0, "{}", w.name());
            // More DPUs => faster kernels.
            assert!(p.kernel_ms(512) < p.kernel_ms(64), "{}", w.name());
        }
    }

    #[test]
    fn job_shapes_mirror_the_suite_and_scale_validly() {
        let shapes = job_shapes();
        assert_eq!(shapes.len(), 16);
        let max = max_in_bytes(&shapes);
        assert!(max > 0);
        for s in &shapes {
            assert!(s.in_bytes > 0, "{}", s.name);
            for n_cores in [1u32, 8, 64, 512] {
                let per_core = s.scaled_per_core(max, 4 << 20, n_cores);
                assert!(per_core >= 64, "{}", s.name);
                assert!(per_core.is_multiple_of(64), "{}", s.name);
            }
        }
        // The largest shape maps to (about) the cap; smaller shapes stay
        // proportionally smaller.
        let biggest = shapes.iter().find(|s| s.in_bytes == max).unwrap();
        assert_eq!(biggest.scaled_per_core(max, 4 << 20, 64), (4 << 20) / 64);
        let smallest = shapes.iter().min_by_key(|s| s.in_bytes).unwrap();
        assert!(
            smallest.scaled_per_core(max, 4 << 20, 64) <= biggest.scaled_per_core(max, 4 << 20, 64)
        );
    }

    #[test]
    fn transfer_dominates_on_average_like_fig16() {
        // Paper: DRAM↔PIM transfer is 63.7 % of end-to-end on average
        // (max 99.7 %) at baseline transfer throughput (~8.5 GB/s).
        let baseline_gbps = 8.5;
        let mut fracs = Vec::new();
        for w in prim_suite() {
            let p = w.profile();
            let t_xfer_ms = (p.in_bytes + p.out_bytes) as f64 / (baseline_gbps * 1e6);
            let total = t_xfer_ms + p.kernel_ms(512);
            fracs.push(t_xfer_ms / total);
        }
        let avg = fracs.iter().sum::<f64>() / fracs.len() as f64;
        let max = fracs.iter().cloned().fold(0.0, f64::max);
        assert!(
            (0.5..=0.8).contains(&avg),
            "average transfer fraction {avg:.3} outside the Fig. 16 band"
        );
        assert!(
            max > 0.95,
            "max transfer fraction {max:.3} should be ~0.997"
        );
        assert!(
            fracs.iter().cloned().fold(1.0, f64::min) < 0.1,
            "TS should be kernel-dominated"
        );
    }
}
