//! The workload trait, transfer profiles and the assembled PrIM suite.

use serde::{Deserialize, Serialize};

/// Result of a functional (small-scale) workload run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FunctionalResult {
    /// Bytes shipped DRAM→PIM during the run.
    pub bytes_in: u64,
    /// Bytes shipped PIM→DRAM during the run.
    pub bytes_out: u64,
    /// Whether the merged PIM output matched the sequential reference.
    pub verified: bool,
}

/// Paper-scale transfer/kernel footprint of one workload (drives the
/// Fig. 16 end-to-end harness).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferProfile {
    /// Total DRAM→PIM bytes.
    pub in_bytes: u64,
    /// Total PIM→DRAM bytes.
    pub out_bytes: u64,
    /// Effective per-DPU processing rate in GB/s (MRAM streaming plus
    /// arithmetic; real DPUs sustain 0.05–0.6 GB/s depending on the
    /// operation mix — PrIM's published characterization).
    pub dpu_rate_gbps: f64,
    /// Fixed kernel overhead (launch/sync), ms.
    pub fixed_kernel_ms: f64,
}

impl TransferProfile {
    /// Kernel wall-clock time in milliseconds on `n_dpus` DPUs: the
    /// per-DPU share of the footprint at the effective rate (SPMD — the
    /// slowest DPU bounds the launch; shares are balanced).
    pub fn kernel_ms(&self, n_dpus: u32) -> f64 {
        let per_dpu = (self.in_bytes + self.out_bytes) as f64 / n_dpus as f64;
        self.fixed_kernel_ms + per_dpu / (self.dpu_rate_gbps * 1e6)
    }
}

/// A PrIM workload: functional execution plus its paper-scale profile.
pub trait PimWorkload: Send + Sync {
    /// Short name as it appears in Fig. 16 ("VA", "BS", ...).
    fn name(&self) -> &'static str;

    /// Run the workload functionally at test scale on `n_dpus` DPUs with
    /// deterministic `seed`: generate inputs, partition, execute per-DPU
    /// kernels, merge, verify against a host reference.
    fn run_functional(&self, n_dpus: u32, seed: u64) -> FunctionalResult;

    /// The paper-scale footprint for the end-to-end evaluation.
    fn profile(&self) -> TransferProfile;
}

/// The 16 PrIM workloads in the order of Fig. 16.
pub fn prim_suite() -> Vec<Box<dyn PimWorkload>> {
    vec![
        Box::new(crate::bfs::Bfs),
        Box::new(crate::bs::BinarySearch),
        Box::new(crate::gemv::Gemv),
        Box::new(crate::hst::HistogramLarge),
        Box::new(crate::hst::HistogramSmall),
        Box::new(crate::mlp::Mlp),
        Box::new(crate::nw::NeedlemanWunsch),
        Box::new(crate::red::Reduction),
        Box::new(crate::scan::ScanRss),
        Box::new(crate::scan::ScanSsa),
        Box::new(crate::sel::Select),
        Box::new(crate::spmv::Spmv),
        Box::new(crate::trns::Transpose),
        Box::new(crate::ts::TimeSeries),
        Box::new(crate::uni::Unique),
        Box::new(crate::va::VectorAdd),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_16_uniquely_named_workloads() {
        let s = prim_suite();
        assert_eq!(s.len(), 16);
        let names: std::collections::HashSet<&str> = s.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn profiles_are_sane() {
        for w in prim_suite() {
            let p = w.profile();
            assert!(p.in_bytes > 0, "{}", w.name());
            assert!(p.dpu_rate_gbps > 0.0, "{}", w.name());
            assert!(p.kernel_ms(512) > 0.0, "{}", w.name());
            // More DPUs => faster kernels.
            assert!(p.kernel_ms(512) < p.kernel_ms(64), "{}", w.name());
        }
    }

    #[test]
    fn transfer_dominates_on_average_like_fig16() {
        // Paper: DRAM↔PIM transfer is 63.7 % of end-to-end on average
        // (max 99.7 %) at baseline transfer throughput (~8.5 GB/s).
        let baseline_gbps = 8.5;
        let mut fracs = Vec::new();
        for w in prim_suite() {
            let p = w.profile();
            let t_xfer_ms = (p.in_bytes + p.out_bytes) as f64 / (baseline_gbps * 1e6);
            let total = t_xfer_ms + p.kernel_ms(512);
            fracs.push(t_xfer_ms / total);
        }
        let avg = fracs.iter().sum::<f64>() / fracs.len() as f64;
        let max = fracs.iter().cloned().fold(0.0, f64::max);
        assert!(
            (0.5..=0.8).contains(&avg),
            "average transfer fraction {avg:.3} outside the Fig. 16 band"
        );
        assert!(
            max > 0.95,
            "max transfer fraction {max:.3} should be ~0.997"
        );
        assert!(
            fracs.iter().cloned().fold(1.0, f64::min) < 0.1,
            "TS should be kernel-dominated"
        );
    }
}
