//! TRNS — out-of-place matrix transpose, row-block partitioned.

use crate::partition::{ranges, Xorshift};
use crate::suite::{FunctionalResult, PimWorkload, TransferProfile};

/// Transpose an `r x c` matrix: each DPU transposes a block of rows into
/// a strided destination region; the host assembles column-major output.
#[derive(Debug, Clone, Copy, Default)]
pub struct Transpose;

/// Per-DPU kernel: scatter rows `rows` of an `r x c` matrix into the
/// transposed buffer (`c x r`, row-major).
pub fn dpu_kernel(
    input: &[u32],
    cols: usize,
    rows: std::ops::Range<usize>,
    out: &mut [u32],
    total_rows: usize,
) {
    for row in rows {
        for col in 0..cols {
            out[col * total_rows + row] = input[row * cols + col];
        }
    }
}

impl PimWorkload for Transpose {
    fn name(&self) -> &'static str {
        "TRNS"
    }

    fn run_functional(&self, n_dpus: u32, seed: u64) -> FunctionalResult {
        let (r, c) = (96usize, 160usize);
        let mut rng = Xorshift::new(seed);
        let input = rng.vec_u32(r * c);
        let mut out = vec![0u32; r * c];
        for range in ranges(r, n_dpus) {
            dpu_kernel(&input, c, range, &mut out, r);
        }
        let mut reference = vec![0u32; r * c];
        dpu_kernel(&input, c, 0..r, &mut reference, r);
        FunctionalResult {
            bytes_in: (r * c) as u64 * 4,
            bytes_out: (r * c) as u64 * 4,
            verified: out == reference && out[1] == input[c],
        }
    }

    fn profile(&self) -> TransferProfile {
        TransferProfile {
            in_bytes: 256 << 20,
            out_bytes: 256 << 20,
            dpu_rate_gbps: 0.06,
            fixed_kernel_ms: 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioned_transpose_matches() {
        for n in [1, 5, 32] {
            assert!(Transpose.run_functional(n, 44).verified, "n = {n}");
        }
    }

    #[test]
    fn kernel_transposes_a_block() {
        // 2x3 matrix -> 3x2.
        let m = [1, 2, 3, 4, 5, 6];
        let mut out = vec![0u32; 6];
        dpu_kernel(&m, 3, 0..2, &mut out, 2);
        assert_eq!(out, vec![1, 4, 2, 5, 3, 6]);
    }
}
