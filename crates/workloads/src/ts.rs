//! TS — time-series subsequence search (the kernel-dominated outlier of
//! Fig. 16: PIM-MMU barely helps because transfers are ~3 % of runtime).

use crate::partition::{ranges, Xorshift};
use crate::suite::{FunctionalResult, PimWorkload, TransferProfile};

/// Find the subsequence of the series closest (squared Euclidean
/// distance) to a query window. DPUs receive overlapping slices so every
/// alignment is covered exactly once.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimeSeries;

/// Distance between the query and the window starting at `start`.
fn dist(series: &[i64], start: usize, query: &[i64]) -> i64 {
    query
        .iter()
        .enumerate()
        .map(|(k, &q)| {
            let d = series[start + k] - q;
            d * d
        })
        .sum()
}

/// Per-DPU kernel: best (distance, alignment) over `starts`.
pub fn dpu_kernel(
    series: &[i64],
    starts: std::ops::Range<usize>,
    query: &[i64],
) -> Option<(i64, usize)> {
    starts.map(|s| (dist(series, s, query), s)).min()
}

impl PimWorkload for TimeSeries {
    fn name(&self) -> &'static str {
        "TS"
    }

    fn run_functional(&self, n_dpus: u32, seed: u64) -> FunctionalResult {
        let n = 1 << 13;
        let m = 64; // query length
        let mut rng = Xorshift::new(seed);
        let series: Vec<i64> = (0..n).map(|_| rng.below(1000) as i64).collect();
        let query: Vec<i64> = (0..m).map(|_| rng.below(1000) as i64).collect();
        let alignments = n - m + 1;

        // Partition the alignment space; each DPU's slice includes the
        // m-1 overlap needed to evaluate its last alignment.
        let best = ranges(alignments, n_dpus)
            .into_iter()
            .filter(|r| !r.is_empty())
            .filter_map(|r| dpu_kernel(&series, r, &query))
            .min();
        let reference = dpu_kernel(&series, 0..alignments, &query);
        FunctionalResult {
            bytes_in: (n as u64 + m as u64) * 8,
            bytes_out: 16,
            verified: best == reference && best.is_some(),
        }
    }

    fn profile(&self) -> TransferProfile {
        TransferProfile {
            in_bytes: 32 << 20,
            out_bytes: 1 << 20,
            // O(n*m) arithmetic per input byte: the DPUs crawl.
            dpu_rate_gbps: 0.0001,
            fixed_kernel_ms: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioned_min_equals_global_min() {
        for n in [1, 6, 40] {
            assert!(TimeSeries.run_functional(n, 2024).verified, "n = {n}");
        }
    }

    #[test]
    fn ts_is_kernel_dominated() {
        let p = TimeSeries.profile();
        let kernel = p.kernel_ms(512);
        let xfer_at_baseline = (p.in_bytes + p.out_bytes) as f64 / 8.5e6;
        assert!(
            kernel > 20.0 * xfer_at_baseline,
            "kernel {kernel} ms vs xfer {xfer_at_baseline} ms"
        );
    }

    #[test]
    fn dist_is_squared_euclidean() {
        assert_eq!(dist(&[1, 2, 3], 0, &[1, 1]), 1);
        assert_eq!(dpu_kernel(&[5, 0, 5], 0..2, &[0]), Some((0, 1)));
    }
}
