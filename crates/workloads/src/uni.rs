//! UNI — unique (collapse consecutive duplicates, like `uniq`).

use crate::partition::{ranges, Xorshift};
use crate::suite::{FunctionalResult, PimWorkload, TransferProfile};

/// Collapse runs of equal adjacent values. Each DPU dedups its slice;
/// the host merge drops a partition's first element when it equals the
/// previous partition's last — the same boundary fix-up the PrIM kernel
/// performs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Unique;

/// Per-DPU kernel: local `uniq`.
pub fn dpu_kernel(slice: &[u32]) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::with_capacity(slice.len());
    for &x in slice {
        if out.last() != Some(&x) {
            out.push(x);
        }
    }
    out
}

impl PimWorkload for Unique {
    fn name(&self) -> &'static str {
        "UNI"
    }

    fn run_functional(&self, n_dpus: u32, seed: u64) -> FunctionalResult {
        let n = 1 << 14;
        let mut rng = Xorshift::new(seed);
        // Values with plenty of runs.
        let mut input = Vec::with_capacity(n);
        let mut v = 0u32;
        while input.len() < n {
            v = rng.below(1000) as u32;
            let run = 1 + rng.below(6) as usize;
            for _ in 0..run.min(n - input.len()) {
                input.push(v);
            }
        }
        let _ = v;

        let mut out: Vec<u32> = Vec::new();
        for r in ranges(n, n_dpus) {
            let part = dpu_kernel(&input[r]);
            let skip = usize::from(out.last().is_some() && out.last() == part.first());
            out.extend(&part[skip.min(part.len())..]);
        }
        let reference = dpu_kernel(&input);
        FunctionalResult {
            bytes_in: n as u64 * 4,
            bytes_out: out.len() as u64 * 4,
            verified: out == reference,
        }
    }

    fn profile(&self) -> TransferProfile {
        TransferProfile {
            in_bytes: 512 << 20,
            out_bytes: 256 << 20,
            dpu_rate_gbps: 0.07,
            fixed_kernel_ms: 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_duplicates_are_merged() {
        for n in [1, 2, 9, 64] {
            assert!(Unique.run_functional(n, 3).verified, "n = {n}");
        }
    }

    #[test]
    fn kernel_dedups_runs() {
        assert_eq!(dpu_kernel(&[1, 1, 2, 2, 2, 1]), vec![1, 2, 1]);
        assert_eq!(dpu_kernel(&[]), Vec::<u32>::new());
    }
}
