//! VA — vector addition (the PrIM "hello world").

use crate::partition::{ranges, Xorshift};
use crate::suite::{FunctionalResult, PimWorkload, TransferProfile};

/// Element-wise `c[i] = a[i] + b[i]`, partitioned contiguously.
#[derive(Debug, Clone, Copy, Default)]
pub struct VectorAdd;

/// Per-DPU kernel: add the two input slices.
pub fn dpu_kernel(a: &[u32], b: &[u32]) -> Vec<u32> {
    a.iter().zip(b).map(|(x, y)| x.wrapping_add(*y)).collect()
}

impl PimWorkload for VectorAdd {
    fn name(&self) -> &'static str {
        "VA"
    }

    fn run_functional(&self, n_dpus: u32, seed: u64) -> FunctionalResult {
        let n = 1 << 14;
        let mut rng = Xorshift::new(seed);
        let a = rng.vec_u32(n);
        let b = rng.vec_u32(n);
        let mut c = Vec::with_capacity(n);
        for r in ranges(n, n_dpus) {
            c.extend(dpu_kernel(&a[r.clone()], &b[r]));
        }
        let reference: Vec<u32> = a.iter().zip(&b).map(|(x, y)| x.wrapping_add(*y)).collect();
        FunctionalResult {
            bytes_in: 2 * (n as u64) * 4,
            bytes_out: (n as u64) * 4,
            verified: c == reference,
        }
    }

    fn profile(&self) -> TransferProfile {
        TransferProfile {
            in_bytes: 512 << 20, // two 256 MiB vectors
            out_bytes: 256 << 20,
            dpu_rate_gbps: 0.1,
            fixed_kernel_ms: 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies_on_various_dpu_counts() {
        for n in [1, 3, 16, 64] {
            let r = VectorAdd.run_functional(n, 7);
            assert!(r.verified, "n_dpus = {n}");
            assert_eq!(r.bytes_in, 2 * r.bytes_out);
        }
    }

    #[test]
    fn kernel_adds() {
        assert_eq!(dpu_kernel(&[1, u32::MAX], &[2, 1]), vec![3, 0]);
    }
}
