//! Robustness under co-located workloads (the Fig. 13 story as a demo):
//! spin up compute contenders next to a DRAM→PIM transfer and watch the
//! baseline collapse while the DCE-offloaded transfer shrugs.
//!
//! ```sh
//! cargo run --release --example contention
//! ```

use pim_mmu::XferKind;
use pim_sim::{run_transfer, ContenderSpec, DesignPoint, SystemConfig, TransferSpec};

fn main() {
    let bytes = 8u64 << 20;
    println!(
        "DRAM->PIM {} MiB with co-located spin-lock threads",
        bytes >> 20
    );
    println!(
        "{:>12} {:>16} {:>16}",
        "contenders", "Baseline (ms)", "PIM-MMU (ms)"
    );
    for k in [0u32, 8, 16, 24] {
        let mut times = Vec::new();
        for design in [DesignPoint::Baseline, DesignPoint::BaseDHP] {
            let mut cfg = SystemConfig::table1(design);
            // A 0.25 ms scheduling quantum so this short demo transfer
            // spans several rounds of the OS's round-robin rotation.
            cfg.cpu.quantum_cycles = 800_000;
            let spec = TransferSpec {
                contenders: vec![ContenderSpec::Spin(k)],
                max_ns: 1e10,
                ..TransferSpec::simple(XferKind::DramToPim, bytes)
            };
            times.push(run_transfer(&cfg, &spec).elapsed_ns * 1e-6);
        }
        println!("{k:>12} {:>16.2} {:>16.2}", times[0], times[1]);
    }
    println!("\nThe baseline needs all 8 cores for its copy loops; every contender");
    println!("steals quanta from them. The DCE never touches a core.");
}
