//! PIM offload of PrIM's histogram (HST-S): partition, per-DPU private
//! histograms, host-side reduction — then the Fig. 16-style timing split
//! under baseline vs PIM-MMU.
//!
//! ```sh
//! cargo run --release --example histogram
//! ```

use pim_mmu::XferKind;
use pim_sim::{run_transfer, DesignPoint, SystemConfig, TransferSpec};
use pim_workloads::hst::{self, HistogramSmall};
use pim_workloads::partition::{ranges, Xorshift};
use pim_workloads::suite::PimWorkload;

fn main() {
    // Functional offload across 128 DPUs.
    let n_dpus = 128u32;
    let n = 1 << 18;
    let bins = 256usize;
    let mut rng = Xorshift::new(0xDEADBEEF);
    let data = rng.vec_u32(n);

    let mut merged = vec![0u64; bins];
    for r in ranges(n, n_dpus) {
        for (b, c) in hst::dpu_kernel(&data[r], bins).into_iter().enumerate() {
            merged[b] += c;
        }
    }
    assert_eq!(merged.iter().sum::<u64>(), n as u64);
    let hottest = merged
        .iter()
        .enumerate()
        .max_by_key(|&(_, c)| *c)
        .expect("nonempty");
    println!(
        "functional HST-S: {n} values into {bins} bins on {n_dpus} DPUs; hottest bin {} holds {}",
        hottest.0, hottest.1
    );
    assert!(HistogramSmall.run_functional(n_dpus, 1).verified);

    // Timing at paper scale.
    let p = HistogramSmall.profile();
    println!(
        "\npaper-scale HST-S: {} MiB in, {:.1} ms kernel on 512 DPUs",
        p.in_bytes >> 20,
        p.kernel_ms(512)
    );
    for design in [DesignPoint::Baseline, DesignPoint::BaseDHP] {
        let cfg = SystemConfig::table1(design);
        let slice = 16u64 << 20;
        let t = run_transfer(&cfg, &TransferSpec::simple(XferKind::DramToPim, slice));
        let in_ms = t.elapsed_ns * 1e-6 * p.in_bytes as f64 / slice as f64;
        let total = in_ms + p.kernel_ms(512); // output histograms are tiny
        println!(
            "  {:<12} in {in_ms:6.1} ms + kernel {:5.1} ms = {total:6.1} ms  ({:.2} GB/s transfer)",
            cfg.design.label(),
            p.kernel_ms(512),
            t.throughput_gbps()
        );
    }
}
