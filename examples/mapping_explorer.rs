//! Explore the three memory mappings of the paper: print where a walk of
//! physical addresses lands under the locality-centric, MLP-centric and
//! HetMap functions (Figs. 2/7 in table form).
//!
//! ```sh
//! cargo run --release --example mapping_explorer
//! ```

use pim_mapping::{BiosConfig, HetMap, LocalityCentric, MapFn, MlpCentric, Organization, PhysAddr};

fn main() {
    let dram = Organization::ddr4_dimm(4, 2);
    let pim = Organization::upmem_dimm(4, 2);
    let loc = LocalityCentric::new(dram);
    let mlp = MlpCentric::new(dram);
    let het = HetMap::pim_mmu(dram, pim);

    println!("cache-line walk under each mapping (DRAM partition)");
    println!(
        "{:>12}  {:<28} {:<28}",
        "phys", "locality-centric", "MLP-centric + XOR"
    );
    for i in 0..8u64 {
        let p = PhysAddr(i * 64);
        println!(
            "{:>12}  {:<28} {:<28}",
            p.to_string(),
            loc.map(p).to_string(),
            mlp.map(p).to_string()
        );
    }

    println!("\n4 KiB-page walk (the XOR hash keeps strides spread):");
    for i in 0..6u64 {
        let p = PhysAddr(i << 20);
        println!(
            "{:>12}  loc ch{}  mlp ch{}",
            p.to_string(),
            loc.map(p).channel,
            mlp.map(p).channel
        );
    }

    println!(
        "\nHetMap partition boundary at {} (= DRAM capacity):",
        het.pim_base()
    );
    for off in [
        0u64,
        (32 << 30) - 64,
        32 << 30,
        (32 << 30) + 64 * 1024 * 1024,
    ] {
        let p = PhysAddr(off);
        let s = het.map(p);
        println!(
            "{:>14} -> {:>4} {}",
            p.to_string(),
            s.space.to_string(),
            s.addr
        );
    }

    println!("\nBIOS interleaving knobs (Fig. 1): channel of the first 8 lines");
    for (name, cfg) in [
        ("1-way IMC + 1-way ch (low MLP)", BiosConfig::low_mlp(2)),
        ("1-way IMC + N-way ch (medium)", BiosConfig::medium_mlp(2)),
        ("N-way IMC + N-way ch (high)", BiosConfig::high_mlp(2)),
    ] {
        let layout = cfg.layout(&dram);
        let chans: Vec<u32> = (0..8).map(|l| layout.map_line(l).channel).collect();
        println!("  {name:<32} {chans:?}");
    }
}
