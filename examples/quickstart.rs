//! Quickstart: move data to PIM the baseline way and the PIM-MMU way.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the Table-I system twice — once with the stock software
//! transfer path, once with the PIM-MMU — pushes 8 MiB to all 512 PIM
//! cores, and prints the throughput/energy comparison the paper's
//! abstract headlines.

use pim_mmu::XferKind;
use pim_sim::{run_transfer, DesignPoint, SystemConfig, TransferSpec};

fn main() {
    let bytes: u64 = 8 << 20;
    let spec = TransferSpec::simple(XferKind::DramToPim, bytes);

    println!("DRAM->PIM, {} MiB over 512 PIM cores", bytes >> 20);
    let mut results = Vec::new();
    for design in [DesignPoint::Baseline, DesignPoint::BaseDHP] {
        let cfg = SystemConfig::table1(design);
        let r = run_transfer(&cfg, &spec);
        println!(
            "  {:<12} {:>7.2} GB/s, {:>8.2} ms, {:>8.2} mJ (PIM bus {:>4.1}% busy)",
            r.design,
            r.throughput_gbps(),
            r.elapsed_ns * 1e-6,
            r.energy.total_mj(),
            r.pim_bus_utilization * 100.0
        );
        results.push(r);
    }
    let speedup = results[0].elapsed_ns / results[1].elapsed_ns;
    let energy_gain = results[0].energy.total_mj() / results[1].energy.total_mj();
    println!(
        "\nPIM-MMU: {speedup:.1}x faster, {energy_gain:.1}x more energy-efficient \
         (paper: 4.1x / 4.1x on average across sizes and directions)"
    );
}
