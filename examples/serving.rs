//! Serving walkthrough: three tenants with different traffic shapes
//! share one DCE, and the scheduling policy decides who waits.
//!
//! * `inter` — an interactive client pool (closed-loop, small jobs) that
//!   cares about tail latency;
//! * `batch` — a bursty bulk loader (large jobs) that only cares about
//!   throughput;
//! * `bg` — steady Poisson background traffic.
//!
//! Run with `cargo run --release --example serving` (append `--smoke`
//! for the CI-sized horizon).

use pim_mmu::XferKind;
use pim_runtime::{
    policy_by_name, ArrivalProcess, JobSizer, Runtime, RuntimeConfig, ServingSystem, TenantSpec,
    POLICY_NAMES,
};
use pim_sim::{DesignPoint, SystemConfig};

fn tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec {
            name: "inter".into(),
            kind: XferKind::DramToPim,
            arrival: ArrivalProcess::ClosedLoop {
                inflight: 2,
                think_ns: 2_000.0,
            },
            sizer: JobSizer::Fixed {
                per_core_bytes: 256,
                n_cores: 64,
            },
            priority: 0, // most important under strict priority
            weight: 1,
            class: 0,
        },
        TenantSpec {
            name: "batch".into(),
            kind: XferKind::DramToPim,
            arrival: ArrivalProcess::Bursty {
                burst: 4,
                gap_ns: 60_000.0,
            },
            sizer: JobSizer::Fixed {
                per_core_bytes: 4096,
                n_cores: 64,
            },
            priority: 2,
            weight: 2,
            class: 1,
        },
        TenantSpec {
            name: "bg".into(),
            kind: XferKind::PimToDram,
            arrival: ArrivalProcess::Poisson { mean_ns: 25_000.0 },
            sizer: JobSizer::Suite {
                cap_bytes: 512 << 10,
                n_cores: 64,
            },
            priority: 1,
            weight: 1,
            class: 1,
        },
    ]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let horizon_ns = if smoke { 80_000.0 } else { 400_000.0 };

    println!(
        "three tenants, one DCE ({} us horizon):\n",
        horizon_ns / 1000.0
    );
    for policy in POLICY_NAMES {
        let rt_cfg = RuntimeConfig {
            chunk_bytes: 16 << 10,
            open_until_ns: horizon_ns,
            ..RuntimeConfig::default()
        };
        let runtime = Runtime::new(
            rt_cfg,
            tenants(),
            policy_by_name(policy, rt_cfg.chunk_bytes).expect("known policy"),
        );
        let cfg = SystemConfig::table1(DesignPoint::BaseDHP);
        let mut serving = ServingSystem::new(cfg, runtime);
        serving.run_for(horizon_ns);

        let rt = serving.runtime();
        println!(
            "policy {policy:<5} jain(bytes) {:.3}, {} chunks dispatched, backlog {}",
            rt.jain_by_bytes(),
            rt.chunks_dispatched(),
            rt.backlog()
        );
        for (name, s) in rt.tenant_stats() {
            println!(
                "  {name:<6} {:>4}/{:<4} jobs  {:>6.2} GB/s  e2e p50 {:>9.0} ns  p99 {:>10.0} ns",
                s.completed,
                s.submitted,
                s.serviced_gbps(horizon_ns),
                s.e2e.p50(),
                s.e2e.p99()
            );
        }
        println!();
    }
    println!("note how strict priority pins `inter`'s p99 low while DRR");
    println!("balances bytes; FCFS lets `batch`'s bursts inflate everyone's tail.");
}
