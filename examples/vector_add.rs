//! End-to-end PIM offload of PrIM's vector addition (VA).
//!
//! ```sh
//! cargo run --release --example vector_add
//! ```
//!
//! Demonstrates the full stack working together:
//! 1. *functional* path — real bytes move through the UPMEM-style
//!    runtime (`DpuSet::push_xfer`, with the Fig. 3 transpose) into
//!    per-DPU MRAM, the per-DPU kernels run, and the pulled-back result
//!    is verified element by element;
//! 2. *timing* path — the same footprint is simulated on the Table-I
//!    machine under the baseline and PIM-MMU designs to produce the
//!    end-to-end time split of Fig. 16.

use pim_device::{DpuSet, PimDevice, PimTopology, XferDirection};
use pim_mmu::XferKind;
use pim_sim::{run_transfer, DesignPoint, SystemConfig, TransferSpec};
use pim_workloads::suite::PimWorkload;
use pim_workloads::va;

fn main() {
    // ---- functional offload on 64 DPUs -----------------------------
    let n_dpus = 64u32;
    let per_dpu = 4096usize; // u32 elements per DPU
    let mut device = PimDevice::new(PimTopology {
        channels: 1,
        ranks: 1,
        chips_per_rank: 8,
        dpus_per_chip: 8,
        mram_bytes: 8 << 20,
    });

    let a: Vec<u32> = (0..n_dpus as usize * per_dpu).map(|i| i as u32).collect();
    let b: Vec<u32> = (0..n_dpus as usize * per_dpu)
        .map(|i| (2 * i) as u32)
        .collect();

    // DPU_FOREACH { dpu_prepare_xfer(a) } ; dpu_push_xfer(TO_DPU) ...
    let mut set = DpuSet::all(&mut device);
    for d in 0..n_dpus {
        let lo = d as usize * per_dpu;
        let bytes: Vec<u8> = a[lo..lo + per_dpu]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        set.prepare_xfer(d, bytes);
    }
    set.push_xfer(XferDirection::ToDpu, 0).expect("push a");
    for d in 0..n_dpus {
        let lo = d as usize * per_dpu;
        let bytes: Vec<u8> = b[lo..lo + per_dpu]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        set.prepare_xfer(d, bytes);
    }
    set.push_xfer(XferDirection::ToDpu, (per_dpu * 4) as u64)
        .expect("push b");

    // "Launch" the kernels: each DPU adds its slices inside MRAM.
    for d in 0..n_dpus {
        let av = set.device().mram(d).read_vec(0, per_dpu * 4);
        let bv = set
            .device()
            .mram(d)
            .read_vec(per_dpu as u64 * 4, per_dpu * 4);
        let au: Vec<u32> = av
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let bu: Vec<u32> = bv
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let cu = va::dpu_kernel(&au, &bu);
        let cb: Vec<u8> = cu.iter().flat_map(|v| v.to_le_bytes()).collect();
        let off = (2 * per_dpu * 4) as u64;
        // This write stands in for the DPU program's MRAM store.
        set.device_mut().mram_mut(d).write(off, &cb);
    }

    // Pull results back and verify.
    for d in 0..n_dpus {
        set.prepare_xfer(d, vec![0u8; per_dpu * 4]);
    }
    let pulled = set
        .push_xfer(XferDirection::FromDpu, (2 * per_dpu * 4) as u64)
        .expect("pull c");
    let mut ok = 0usize;
    for (d, bytes) in pulled {
        let lo = d as usize * per_dpu;
        for (i, c) in bytes.chunks_exact(4).enumerate() {
            let got = u32::from_le_bytes(c.try_into().unwrap());
            assert_eq!(got, a[lo + i].wrapping_add(b[lo + i]), "dpu {d} elem {i}");
            ok += 1;
        }
    }
    println!("functional VA: {ok} elements verified across {n_dpus} DPUs");

    // Cross-check with the suite's self-verifying implementation.
    let r = pim_workloads::va::VectorAdd.run_functional(n_dpus, 7);
    assert!(r.verified);

    // ---- timing on the Table-I machine ------------------------------
    let p = pim_workloads::va::VectorAdd.profile();
    println!(
        "\npaper-scale VA footprint: {} MiB in, {} MiB out, kernel {:.1} ms on 512 DPUs",
        p.in_bytes >> 20,
        p.out_bytes >> 20,
        p.kernel_ms(512)
    );
    for design in [DesignPoint::Baseline, DesignPoint::BaseDHP] {
        let cfg = SystemConfig::table1(design);
        // Simulate a 16 MiB slice of each phase and scale (bandwidth-bound).
        let slice = 16u64 << 20;
        let tin = run_transfer(&cfg, &TransferSpec::simple(XferKind::DramToPim, slice));
        let tout = run_transfer(&cfg, &TransferSpec::simple(XferKind::PimToDram, slice));
        let in_ms = tin.elapsed_ns * 1e-6 * p.in_bytes as f64 / slice as f64;
        let out_ms = tout.elapsed_ns * 1e-6 * p.out_bytes as f64 / slice as f64;
        let total = in_ms + p.kernel_ms(512) + out_ms;
        println!(
            "  {:<12} in {in_ms:7.1} ms | kernel {:6.1} ms | out {out_ms:7.1} ms | total {total:7.1} ms",
            cfg.design.label(),
            p.kernel_ms(512),
        );
    }
}
