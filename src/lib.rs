//! Umbrella crate for examples and integration tests. See the member crates.
pub use pim_mmu as core;
