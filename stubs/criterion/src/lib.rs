//! Offline stub of `criterion`.
//!
//! Implements the API subset used by the `pim-bench` benchmarks:
//! `Criterion::benchmark_group`, `BenchmarkGroup::{throughput,
//! bench_function, finish}`, `Bencher::iter`, `black_box`, `Throughput`,
//! and the `criterion_group!`/`criterion_main!` macros. Measurement is a
//! real adaptive wall-clock loop (median of sampled batches) — numbers
//! are honest, just without criterion's statistical machinery.

use std::time::{Duration, Instant};

/// Re-export of the compiler's optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units-of-work declaration used to derive a rate from the timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Top-level driver handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("== {name} ==");
        BenchmarkGroup { throughput: None }
    }
}

/// A group of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup {
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Declare the per-iteration work for subsequent `bench_function`s.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Time `f` and print the per-iteration latency (and rate, when a
    /// throughput was declared).
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        // Warm-up pass (also primes caches/allocator).
        f(&mut b);
        b.samples.clear();
        let budget = Duration::from_millis(300);
        let start = Instant::now();
        while start.elapsed() < budget {
            f(&mut b);
        }
        b.samples.sort_unstable();
        let median = b.samples[b.samples.len() / 2];
        let per_iter_ns = median as f64;
        match self.throughput {
            Some(Throughput::Bytes(n)) => println!(
                "{id:<28} {:>12.1} ns/iter  {:>10.2} GiB/s",
                per_iter_ns,
                n as f64 / per_iter_ns * 1e9 / (1u64 << 30) as f64
            ),
            Some(Throughput::Elements(n)) => println!(
                "{id:<28} {:>12.1} ns/iter  {:>10.2} Melem/s",
                per_iter_ns,
                n as f64 / per_iter_ns * 1e3
            ),
            None => println!("{id:<28} {per_iter_ns:>12.1} ns/iter"),
        }
        self
    }

    /// End the group (parity with criterion; nothing to flush).
    pub fn finish(self) {}
}

/// Timing context passed to the benchmark closure.
pub struct Bencher {
    samples: Vec<u128>,
}

impl Bencher {
    /// Run `f` in a timed batch and record the per-iteration latency.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Batch enough iterations to dwarf timer overhead.
        let probe = Instant::now();
        black_box(f());
        let one = probe.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(10).as_nanos() / one.as_nanos()).clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        self.samples.push(start.elapsed().as_nanos() / batch);
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
