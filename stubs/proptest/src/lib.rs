//! Offline stub of `proptest`.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, integer-range /
//! [`Just`] / [`any`] / [`prop_oneof!`] / tuple / [`collection::vec`]
//! strategies, and [`Strategy::prop_map`]. Cases come from a fixed-seed
//! xorshift RNG, so every run replays the same inputs (append the failing
//! case index to reproduce). Shrinking is not implemented: a failure
//! reports the raw case, not a minimized one.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// Run configuration: only the case count is modeled.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Property failure raised by the `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic xorshift64* generator: one instance per case, seeded
/// from the case index so cases are independent and reproducible.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed a generator (zero is mapped to a fixed non-zero seed).
    pub fn new(seed: u64) -> Self {
        TestRng(if seed == 0 { 0x9E3779B97F4A7C15 } else { seed })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty sampling range");
        self.next_u64() % n
    }
}

/// Drives the per-property case loop (used by the `proptest!` expansion).
#[derive(Debug)]
pub struct TestRunner {
    cfg: ProptestConfig,
}

impl TestRunner {
    /// Runner over `cfg`.
    pub fn new(cfg: ProptestConfig) -> Self {
        TestRunner { cfg }
    }

    /// Cases to run.
    pub fn cases(&self) -> u32 {
        self.cfg.cases
    }

    /// The deterministic RNG for one case.
    pub fn rng_for(&self, case: u32) -> TestRng {
        TestRng::new(0xD1B54A32D192ED03 ^ (case as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15))
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy yielding a constant.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between same-typed strategies (see [`prop_oneof!`]).
pub struct OneOf<S>(pub Vec<S>);

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].sample(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over every value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specifications accepted by [`vec()`](fn@vec).
    pub trait SizeRange {
        /// Draw a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// See [`vec()`](fn@vec).
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `Vec` of values drawn from `element`, with length drawn from
    /// `len` (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Define property tests: each `fn` runs its body once per case with the
/// `name in strategy` bindings freshly sampled.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __runner = $crate::TestRunner::new($cfg);
                for __case in 0..__runner.cases() {
                    let mut __rng = __runner.rng_for(__case);
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )+
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!("proptest case {}/{} failed: {}", __case, __runner.cases(), e);
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?}` != `{:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)+);
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a != *__b, "assertion failed: both sides are `{:?}`", __a);
    }};
}

/// Uniform choice among the listed (same-typed) strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($s),+])
    };
}

/// The glob-importable API surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let runner = super::TestRunner::new(ProptestConfig::default());
        let a: Vec<u64> = (0..4).map(|c| runner.rng_for(c).next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|c| runner.rng_for(c).next_u64()).collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5u64..17, y in 0usize..3) {
            prop_assert!((5..17).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn vec_and_map_compose(
            v in crate::collection::vec(any::<u8>(), 3usize..9),
            w in crate::collection::vec(0u32..7, 4usize),
            flag in prop_oneof![Just(true), Just(false)],
        ) {
            prop_assert!(v.len() >= 3 && v.len() < 9);
            prop_assert_eq!(w.len(), 4);
            prop_assert!(w.iter().all(|&x| x < 7));
            let _ = flag;
        }

        #[test]
        fn tuples_and_prop_map(pair in (0u32..4, 0u64..10).prop_map(|(a, b)| (b, a))) {
            prop_assert!(pair.0 < 10 && pair.1 < 4);
        }
    }
}
