//! Offline stub of `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names in both the trait and
//! macro namespaces so `use serde::{Deserialize, Serialize};` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. No actual
//! serialization machinery exists; swap the workspace dependency back to
//! crates.io serde when a real serializer is needed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (never implemented or bounded
/// on in this workspace).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (never implemented or
/// bounded on in this workspace).
pub trait Deserialize<'de> {}
