//! Offline stub of `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and result
//! types but never (de)serializes through them yet — the derives only
//! need to parse. Each derive accepts the full `#[serde(...)]` attribute
//! surface and expands to nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
