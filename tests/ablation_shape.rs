//! The paper's qualitative claims, checked end to end at test scale:
//! the ablation ordering of Fig. 15, the channel-balance contrast of
//! Fig. 6, and the static-dominated energy story of Fig. 15(b).

use pim_mmu::XferKind;
use pim_sim::{run_transfer, DesignPoint, SystemConfig, TransferResult, TransferSpec};

fn run(design: DesignPoint, kind: XferKind, bytes: u64) -> TransferResult {
    let mut cfg = SystemConfig::table1(design);
    cfg.sample_ns = 100_000.0;
    let spec = TransferSpec {
        max_ns: 1e10,
        ..TransferSpec::simple(kind, bytes)
    };
    run_transfer(&cfg, &spec)
}

#[test]
fn fig15_throughput_ordering() {
    let bytes = 4 << 20;
    let base = run(DesignPoint::Baseline, XferKind::DramToPim, bytes);
    let d = run(DesignPoint::BaseD, XferKind::DramToPim, bytes);
    let dh = run(DesignPoint::BaseDH, XferKind::DramToPim, bytes);
    let dhp = run(DesignPoint::BaseDHP, XferKind::DramToPim, bytes);
    let t = |r: &TransferResult| r.throughput_gbps();

    // A vanilla DMA engine does not beat the deeply-pipelined AVX loop.
    assert!(
        t(&d) < t(&base) * 1.05,
        "Base+D {:.2} should not outrun Base {:.2}",
        t(&d),
        t(&base)
    );
    // HetMap alone barely moves end-to-end transfer throughput.
    assert!(
        (t(&dh) - t(&d)).abs() / t(&d) < 0.15,
        "Base+D+H {:.2} vs Base+D {:.2} should be marginal",
        t(&dh),
        t(&d)
    );
    // PIM-MS unlocks it.
    assert!(
        t(&dhp) > 2.0 * t(&base),
        "Base+D+H+P {:.2} must clearly beat Base {:.2}",
        t(&dhp),
        t(&base)
    );
}

#[test]
fn fig15_energy_shape() {
    let bytes = 4 << 20;
    let base = run(DesignPoint::Baseline, XferKind::DramToPim, bytes);
    let d = run(DesignPoint::BaseD, XferKind::DramToPim, bytes);
    let dhp = run(DesignPoint::BaseDHP, XferKind::DramToPim, bytes);
    // Slower Base+D costs *more* energy than Base (static-dominated).
    assert!(
        d.energy.total_mj() > base.energy.total_mj() * 0.9,
        "Base+D {:.2} mJ vs Base {:.2} mJ",
        d.energy.total_mj(),
        base.energy.total_mj()
    );
    // Full PIM-MMU costs much less.
    assert!(dhp.energy.total_mj() < base.energy.total_mj() / 2.0);
    // And the static share dominates everywhere.
    for r in [&base, &d, &dhp] {
        let s = r.energy.core_static_mj
            + r.energy.cache_static_mj
            + r.energy.dram_static_mj
            + r.energy.pimmmu_static_mj;
        assert!(s > r.energy.total_mj() * 0.5, "{:?}", r.energy);
    }
}

#[test]
fn fig6_pim_ms_balances_channels() {
    let bytes = 4 << 20;
    let spec = TransferSpec {
        max_ns: 1e10,
        ..TransferSpec::simple(XferKind::DramToPim, bytes)
    };
    let mut cfg = SystemConfig::table1(DesignPoint::BaseDHP);
    cfg.sample_ns = 100_000.0;
    let r = run_transfer(&cfg, &spec);
    // Total written bytes per PIM channel must be near-equal.
    let per_ch: Vec<u64> = r
        .pim_channel_windows
        .iter()
        .map(|w| w.iter().sum::<u64>())
        .collect();
    let total: u64 = per_ch.iter().sum();
    assert!(total >= bytes, "all writes must reach PIM");
    let avg = total as f64 / per_ch.len() as f64;
    for (ch, &b) in per_ch.iter().enumerate() {
        assert!(
            (b as f64 - avg).abs() / avg < 0.02,
            "channel {ch} skewed: {per_ch:?}"
        );
    }
}

#[test]
fn driver_overhead_only_hurts_tiny_transfers() {
    // The DCE pays a fixed driver round trip; at 64 KiB it is visible,
    // at megabytes it vanishes.
    let small = run(DesignPoint::BaseDHP, XferKind::DramToPim, 128 << 10);
    let big = run(DesignPoint::BaseDHP, XferKind::DramToPim, 8 << 20);
    assert!(big.throughput_gbps() > small.throughput_gbps());
}
