//! Cross-crate functional integrity: data survives the full
//! DRAM → transpose → PIM → transpose → DRAM round trip, the PrIM suite
//! verifies on the device model, and the mapping/device crates agree on
//! PIM core numbering.

use pim_device::{DpuSet, PimDevice, PimTopology, XferDirection};
use pim_mapping::{HetMap, MemSpace, Organization, PhysAddr, PimAddrSpace};
use pim_workloads::prim_suite;

#[test]
fn all_16_prim_workloads_verify_functionally() {
    for w in prim_suite() {
        for n_dpus in [1u32, 8, 64] {
            let r = w.run_functional(n_dpus, 0xFEED + n_dpus as u64);
            assert!(r.verified, "{} failed at {n_dpus} DPUs", w.name());
            assert!(r.bytes_in > 0);
        }
    }
}

#[test]
fn runtime_roundtrip_preserves_every_byte_across_all_dpus() {
    let mut device = PimDevice::new(PimTopology {
        channels: 2,
        ranks: 1,
        chips_per_rank: 8,
        dpus_per_chip: 8,
        mram_bytes: 1 << 20,
    });
    let n = device.num_dpus();
    let mut set = DpuSet::all(&mut device);
    let payload: Vec<Vec<u8>> = (0..n)
        .map(|d| (0..512).map(|i| ((d * 31 + i) % 251) as u8).collect())
        .collect();
    for (d, p) in payload.iter().enumerate() {
        set.prepare_xfer(d as u32, p.clone());
    }
    set.push_xfer(XferDirection::ToDpu, 128).expect("push");
    for d in 0..n {
        set.prepare_xfer(d, vec![0u8; 512]);
    }
    let pulled = set.push_xfer(XferDirection::FromDpu, 128).expect("pull");
    assert_eq!(pulled.len(), n as usize);
    for (d, data) in pulled {
        assert_eq!(data, payload[d as usize], "DPU {d} corrupted");
    }
}

#[test]
fn mapping_and_device_topologies_agree_on_core_numbering() {
    let org = Organization::upmem_dimm(4, 2);
    let space = PimAddrSpace::new(PhysAddr(32 << 30), org);
    let topo = PimTopology::from_organization(&org);
    assert_eq!(space.num_cores(), topo.total_dpus());
    for core in [0u32, 1, 63, 64, 255, 511] {
        let (ch, ra, bg, bk) = space.core_coords(core);
        let (tch, tra, chip, within) = topo.dpu_coords(core);
        assert_eq!((ch, ra), (tch, tra), "core {core}");
        // Chips slice the per-rank bank space in 8-DPU groups.
        assert_eq!(chip * 8 + within, bg * org.banks + bk, "core {core}");
    }
}

#[test]
fn hetmap_routes_every_pim_core_heap_to_its_own_bank() {
    let dram = Organization::ddr4_dimm(4, 2);
    let pim = Organization::upmem_dimm(4, 2);
    let het = HetMap::pim_mmu(dram, pim);
    let space = PimAddrSpace::new(het.pim_base(), pim);
    for core in (0..512).step_by(37) {
        let offsets = [0u64, 64, 4096, space.core_bytes() - 64];
        let spots: Vec<_> = offsets
            .iter()
            .map(|&o| het.map(space.core_phys(core, o)))
            .collect();
        for s in &spots {
            assert_eq!(s.space, MemSpace::Pim);
            assert_eq!(space.core_of(&s.addr), core, "core {core} leaked banks");
        }
    }
}
