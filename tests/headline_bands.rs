//! The abstract's headline numbers, asserted as bands at test scale
//! (recorded paper-vs-measured values live in EXPERIMENTS.md).

use pim_mmu::XferKind;
use pim_sim::{run_memcpy, run_transfer, DesignPoint, SystemConfig, TransferSpec};

fn cfg(d: DesignPoint) -> SystemConfig {
    let mut c = SystemConfig::table1(d);
    c.sample_ns = 200_000.0;
    c
}

#[test]
fn transfer_speedup_band() {
    // Paper: 4.1x average, 6.9x max across sizes/directions. At this
    // small scale we accept [2.5, 8].
    let spec = TransferSpec {
        max_ns: 1e10,
        ..TransferSpec::simple(XferKind::DramToPim, 4 << 20)
    };
    let base = run_transfer(&cfg(DesignPoint::Baseline), &spec);
    let full = run_transfer(&cfg(DesignPoint::BaseDHP), &spec);
    let speedup = base.elapsed_ns / full.elapsed_ns;
    assert!(
        (2.5..=8.0).contains(&speedup),
        "transfer speedup {speedup:.2}x outside band (base {:.2} GB/s, pim-mmu {:.2} GB/s)",
        base.throughput_gbps(),
        full.throughput_gbps()
    );
}

#[test]
fn energy_efficiency_band() {
    // Paper: 4.1x average energy-efficiency gain.
    let spec = TransferSpec {
        max_ns: 1e10,
        ..TransferSpec::simple(XferKind::PimToDram, 4 << 20)
    };
    let base = run_transfer(&cfg(DesignPoint::Baseline), &spec);
    let full = run_transfer(&cfg(DesignPoint::BaseDHP), &spec);
    let gain = base.energy.total_mj() / full.energy.total_mj();
    assert!(
        (2.0..=10.0).contains(&gain),
        "energy-efficiency gain {gain:.2}x outside band"
    );
}

#[test]
fn memcpy_hetmap_band() {
    // Paper Fig. 14: 4.9x average (max 6.0x) on the Table-I machine.
    let b = run_memcpy(&cfg(DesignPoint::Baseline), 2 << 20, 1e10);
    let h = run_memcpy(&cfg(DesignPoint::BaseDHP), 2 << 20, 1e10);
    let gain = h.throughput_gbps() / b.throughput_gbps();
    assert!(
        (2.0..=12.0).contains(&gain),
        "memcpy HetMap gain {gain:.2}x outside band"
    );
}

#[test]
fn baseline_utilization_matches_characterization() {
    // Paper §III-B: the software path reaches only ~15.5 % of PIM peak
    // (~11.6 % of DRAM peak) — i.e. ~9 GB/s on 76.8 GB/s channels.
    let spec = TransferSpec {
        max_ns: 1e10,
        ..TransferSpec::simple(XferKind::DramToPim, 4 << 20)
    };
    let base = run_transfer(&cfg(DesignPoint::Baseline), &spec);
    let gbps = base.throughput_gbps();
    assert!(
        (5.0..=14.0).contains(&gbps),
        "baseline transfer throughput {gbps:.2} GB/s outside the characterization band"
    );
}
