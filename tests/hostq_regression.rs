//! The async host interface's regression anchor: at queue depth 1 with
//! interrupt coalescing off (the identity [`HostQueueConfig`]), the
//! doorbell/queue-pair dispatch path must reproduce the *synchronous*
//! serving results bit-for-bit.
//!
//! The golden values below were captured from the pre-queue-pair
//! runtime (the synchronous `driver_ready_ns` handshake, PR 2) on the
//! exact seeded scenario of `tests/serving_runtime.rs`'s determinism
//! test: every `f64` is pinned to the bit. Any drift in the depth-1
//! path — timestamp arithmetic, edge ordering, driver gating — fails
//! here before it can silently re-baseline the serving numbers.

use pim_runtime::{
    Fcfs, HostQueueConfig, Placement, Runtime, RuntimeConfig, ServingSystem, TenantSpec,
};
use pim_sim::{DesignPoint, SystemConfig};

fn run_sharded(hostq: HostQueueConfig, shards: usize, placement: Placement) -> ServingSystem {
    let rt_cfg = RuntimeConfig {
        chunk_bytes: 64 << 10,
        open_until_ns: 40_000.0,
        seed: 7,
        hostq,
        shards,
        placement,
        ..RuntimeConfig::default()
    };
    let tenants = vec![
        TenantSpec::poisson("a", 6_000.0, 1024, 64),
        TenantSpec::poisson("b", 9_000.0, 512, 64),
    ];
    let runtime = Runtime::new(rt_cfg, tenants, Box::new(Fcfs));
    let mut cfg = SystemConfig::table1(DesignPoint::BaseDHP);
    cfg.sample_ns = 50_000.0;
    let mut serving = ServingSystem::new(cfg, runtime);
    serving.run_for(60_000.0);
    serving
}

fn run(hostq: HostQueueConfig) -> ServingSystem {
    run_sharded(hostq, 1, Placement::HashPin)
}

/// `(id, tenant, submit, dispatch, complete, bytes)` with timestamps as
/// `f64::to_bits`, captured from the synchronous runtime.
const GOLDEN: [(u64, usize, u64, u64, u64, u64); 9] = [
    (
        0,
        1,
        4638435053409786461,
        4638452529493966848,
        4663863614302870044,
        32768,
    ),
    (
        1,
        0,
        4662768889582079505,
        4662768985056477184,
        4669157847178128916,
        65536,
    ),
    (
        2,
        1,
        4665764508129905159,
        4668197205243330560,
        4670966221374035591,
        32768,
    ),
    (
        3,
        0,
        4666590976988042528,
        4670484773544656896,
        4673063330621931127,
        65536,
    ),
    (
        4,
        0,
        4667959424128605430,
        4672583208666136576,
        4674941671072040223,
        65536,
    ),
    (
        5,
        0,
        4671203484735604151,
        4674666783200772096,
        4675981743101218652,
        65536,
    ),
    (
        6,
        1,
        4671403999308218130,
        4675741667486072832,
        4676621347157037810,
        32768,
    ),
    (
        7,
        1,
        4671861256163513855,
        4676380629770698752,
        4677256235751082820,
        32768,
    ),
    (
        8,
        0,
        4672053818819178346,
        4677015511836393472,
        4678304790375030587,
        65536,
    ),
];

#[test]
fn depth1_no_coalescing_reproduces_the_synchronous_results_bit_for_bit() {
    let serving = run(HostQueueConfig::synchronous());
    let rt = serving.runtime();
    assert_eq!(rt.records().len(), GOLDEN.len());
    for (rec, g) in rt.records().iter().zip(GOLDEN) {
        assert_eq!(rec.id, g.0);
        assert_eq!(rec.tenant, g.1);
        assert_eq!(rec.submit_ns.to_bits(), g.2, "job {} submit drifted", g.0);
        assert_eq!(
            rec.dispatch_ns.to_bits(),
            g.3,
            "job {} dispatch drifted",
            g.0
        );
        assert_eq!(
            rec.complete_ns.to_bits(),
            g.4,
            "job {} completion drifted",
            g.0
        );
        assert_eq!(rec.bytes, g.5);
    }
    assert_eq!(rt.jain_by_bytes().to_bits(), 4605784749950143806);
    assert_eq!(rt.chunks_dispatched(), 10);
    let host = rt.host_stats();
    // The identity ring: one doorbell per chunk and one interrupt per
    // fielded completion (the 10th chunk is still in flight at the
    // horizon), never more than one descriptor in flight.
    assert_eq!(host.doorbells, 10);
    assert_eq!(host.interrupts, 9);
    assert_eq!(host.max_in_flight, 1);
    assert_eq!(host.mean_in_flight, 1.0);
    assert_eq!(host.interrupts_per_chunk, 1.0);
}

/// The shard layer's identity anchor: a single-shard sharded run —
/// under *either* placement — is the same dispatch loop as before the
/// shard refactor, so it must reproduce the synchronous goldens to the
/// bit too (one shard is always both the hash target and the shallowest
/// ring).
#[test]
fn single_shard_sharded_runs_reproduce_the_goldens_under_both_placements() {
    for placement in Placement::ALL {
        let serving = run_sharded(HostQueueConfig::synchronous(), 1, placement);
        let rt = serving.runtime();
        assert_eq!(
            rt.records().len(),
            GOLDEN.len(),
            "{} drifted",
            placement.name()
        );
        for (rec, g) in rt.records().iter().zip(GOLDEN) {
            assert_eq!(rec.id, g.0, "{}", placement.name());
            assert_eq!(rec.tenant, g.1, "{}", placement.name());
            assert_eq!(rec.submit_ns.to_bits(), g.2, "{}", placement.name());
            assert_eq!(rec.dispatch_ns.to_bits(), g.3, "{}", placement.name());
            assert_eq!(rec.complete_ns.to_bits(), g.4, "{}", placement.name());
            assert_eq!(rec.bytes, g.5, "{}", placement.name());
        }
        assert_eq!(rt.jain_by_bytes().to_bits(), 4605784749950143806);
        // The aggregate host view of one shard is the old single-ring
        // view.
        let host = rt.host_stats();
        assert_eq!(host.doorbells, 10);
        assert_eq!(host.interrupts, 9);
        assert_eq!(host.max_in_flight, 1);
        let shards = rt.shard_host_stats();
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0], host);
    }
}

/// Sharding the same scenario across two engines completes every job
/// the single-engine run completed (plus more within the horizon),
/// exactly once, with lower mean queueing delay and mean end-to-end
/// latency — and under hash-pin the two tenants land on different
/// shards, each with its own doorbell/interrupt stream. (Unlike a
/// deeper ring on one engine, per-job dominance is *not* guaranteed:
/// the engines share memory channels, so a job served concurrently can
/// take slightly longer device-side than it did when the single engine
/// serialized everything.)
#[test]
fn two_shards_improve_on_one_and_split_the_tenants_under_hash_pin() {
    let one = run_sharded(HostQueueConfig::synchronous(), 1, Placement::HashPin);
    let two = run_sharded(HostQueueConfig::synchronous(), 2, Placement::HashPin);
    let (r1, r2) = (one.runtime(), two.runtime());
    assert!(r2.records().len() > r1.records().len());
    let mut q1 = 0.0;
    let mut q2 = 0.0;
    let mut e1 = 0.0;
    let mut e2 = 0.0;
    for a in r1.records() {
        let b = r2
            .records()
            .iter()
            .find(|r| r.id == a.id)
            .expect("every single-engine completion also completes sharded");
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(
            a.submit_ns.to_bits(),
            b.submit_ns.to_bits(),
            "same arrivals"
        );
        q1 += a.queue_delay_ns();
        q2 += b.queue_delay_ns();
        e1 += a.e2e_ns();
        e2 += b.e2e_ns();
    }
    assert!(
        q2 < q1 && e2 < e1,
        "sharding should cut queueing ({q1:.0} -> {q2:.0} ns) and e2e ({e1:.0} -> {e2:.0} ns)"
    );
    // Exactly-once across shards.
    let mut ids: Vec<u64> = r2.records().iter().map(|r| r.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), r2.records().len(), "duplicate completions");
    // Both shards actually carried traffic (tenant 0 -> shard 0,
    // tenant 1 -> shard 1), with independent rings.
    let shards = r2.shard_host_stats();
    assert_eq!(shards.len(), 2);
    assert!(shards[0].doorbells > 0 && shards[1].doorbells > 0);
    assert_eq!(
        shards[0].doorbells + shards[1].doorbells,
        r2.host_stats().doorbells
    );
}

/// A deeper ring only moves completions *earlier*: the engine stops
/// idling out the interrupt round trip between chunks, so every job the
/// synchronous path finished completes no later (and the freed horizon
/// fits strictly more jobs).
#[test]
fn deeper_rings_dominate_the_synchronous_path() {
    let sync = run(HostQueueConfig::synchronous());
    let deep = run(HostQueueConfig::with_depth(8));
    let s = sync.runtime();
    let d = deep.runtime();
    assert!(
        d.records().len() > s.records().len(),
        "depth 8 should complete more jobs ({} vs {})",
        d.records().len(),
        s.records().len()
    );
    for a in s.records() {
        let b = d
            .records()
            .iter()
            .find(|r| r.id == a.id)
            .expect("every synchronous completion also completes at depth 8");
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(
            a.submit_ns.to_bits(),
            b.submit_ns.to_bits(),
            "same arrivals"
        );
        assert!(
            b.complete_ns <= a.complete_ns + 1e-9,
            "job {}: depth-8 completion {} ns later than synchronous {} ns",
            a.id,
            b.complete_ns,
            a.complete_ns
        );
    }
    let host = d.host_stats();
    assert!(
        host.max_in_flight > 1,
        "an 8-deep ring should actually pipeline (max in flight {})",
        host.max_in_flight
    );
    assert!(
        host.doorbells < host.descriptors,
        "a deep ring should batch some doorbells ({} rings for {} descriptors)",
        host.doorbells,
        host.descriptors
    );
}
