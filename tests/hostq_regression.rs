//! The layered bit-for-bit regression anchors: every layer's identity
//! point must reproduce the PR 2 synchronous serving results exactly —
//! queue depth 1 with coalescing off (PR 3), a single-shard engine
//! array under either placement (PR 4), and `Preemption::Off` (PR 5).
//!
//! The golden scenario, table and assertion live in
//! [`pim_bench::goldens`]; any drift in the identity paths —
//! timestamp arithmetic, edge ordering, driver gating, suspension
//! bookkeeping — fails here before it can silently re-baseline the
//! serving numbers.

use pim_bench::goldens::{assert_matches_pr4_golden, golden_scenario, run_golden};
use pim_runtime::{HostQueueConfig, Placement, Preemption, RuntimeConfig, ServingSystem};

fn run_with(mutate: impl FnOnce(&mut RuntimeConfig)) -> ServingSystem {
    let (mut rt_cfg, tenants) = golden_scenario(7);
    mutate(&mut rt_cfg);
    run_golden(rt_cfg, tenants)
}

#[test]
fn depth1_no_coalescing_reproduces_the_synchronous_results_bit_for_bit() {
    let serving = run_with(|cfg| cfg.hostq = HostQueueConfig::synchronous());
    let rt = serving.runtime();
    assert_matches_pr4_golden(rt, "depth-1 identity");
    assert_eq!(rt.chunks_dispatched(), 10);
    let host = rt.host_stats();
    // The identity ring: one doorbell per chunk and one interrupt per
    // fielded completion (the 10th chunk is still in flight at the
    // horizon), never more than one descriptor in flight.
    assert_eq!(host.doorbells, 10);
    assert_eq!(host.interrupts, 9);
    assert_eq!(host.max_in_flight, 1);
    assert_eq!(host.mean_in_flight, 1.0);
    assert_eq!(host.interrupts_per_chunk, 1.0);
}

/// The shard layer's identity anchor: a single-shard sharded run —
/// under *either* placement — is the same dispatch loop as before the
/// shard refactor, so it must reproduce the synchronous goldens to the
/// bit too (one shard is always both the hash target and the shallowest
/// ring).
#[test]
fn single_shard_sharded_runs_reproduce_the_goldens_under_both_placements() {
    for placement in Placement::ALL {
        let serving = run_with(|cfg| cfg.placement = placement);
        let rt = serving.runtime();
        assert_matches_pr4_golden(rt, placement.name());
        // The aggregate host view of one shard is the old single-ring
        // view.
        let host = rt.host_stats();
        assert_eq!(host.doorbells, 10);
        assert_eq!(host.interrupts, 9);
        assert_eq!(host.max_in_flight, 1);
        let shards = rt.shard_host_stats();
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0], host);
    }
}

/// The preemption layer's identity anchor: `Preemption::Off` (the
/// default) must never suspend anything and must reproduce the PR 4
/// goldens to the f64 bit — and so must `PriorityKick` on this
/// scenario, whose two tenants share one priority class (no waiter is
/// ever *strictly* more urgent, so the kick path's decision logic runs
/// at every dispatch edge but never fires).
#[test]
fn preemption_off_reproduces_the_pr4_goldens_bit_for_bit() {
    assert_eq!(
        RuntimeConfig::default().preemption,
        Preemption::Off,
        "Off must stay the default — it is the golden-pinned behavior"
    );
    let serving = run_with(|cfg| cfg.preemption = Preemption::Off);
    let rt = serving.runtime();
    assert_matches_pr4_golden(rt, "preemption off");
    assert_eq!(rt.preemptions(), 0);
    assert_eq!(rt.host_stats().recalls, 0);

    let kicked = run_with(|cfg| cfg.preemption = Preemption::PriorityKick);
    let rt = kicked.runtime();
    assert_matches_pr4_golden(rt, "kick with equal classes");
    assert_eq!(rt.preemptions(), 0, "equal classes never kick");
}

/// Sharding the same scenario across two engines completes every job
/// the single-engine run completed (plus more within the horizon),
/// exactly once, with lower mean queueing delay and mean end-to-end
/// latency — and under hash-pin the two tenants land on different
/// shards, each with its own doorbell/interrupt stream. (Unlike a
/// deeper ring on one engine, per-job dominance is *not* guaranteed:
/// the engines share memory channels, so a job served concurrently can
/// take slightly longer device-side than it did when the single engine
/// serialized everything.)
#[test]
fn two_shards_improve_on_one_and_split_the_tenants_under_hash_pin() {
    let one = run_with(|_| {});
    let two = run_with(|cfg| cfg.shards = 2);
    let (r1, r2) = (one.runtime(), two.runtime());
    assert!(r2.records().len() > r1.records().len());
    let mut q1 = 0.0;
    let mut q2 = 0.0;
    let mut e1 = 0.0;
    let mut e2 = 0.0;
    for a in r1.records() {
        let b = r2
            .records()
            .iter()
            .find(|r| r.id == a.id)
            .expect("every single-engine completion also completes sharded");
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(
            a.submit_ns.to_bits(),
            b.submit_ns.to_bits(),
            "same arrivals"
        );
        q1 += a.queue_delay_ns();
        q2 += b.queue_delay_ns();
        e1 += a.e2e_ns();
        e2 += b.e2e_ns();
    }
    assert!(
        q2 < q1 && e2 < e1,
        "sharding should cut queueing ({q1:.0} -> {q2:.0} ns) and e2e ({e1:.0} -> {e2:.0} ns)"
    );
    // Exactly-once across shards.
    let mut ids: Vec<u64> = r2.records().iter().map(|r| r.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), r2.records().len(), "duplicate completions");
    // Both shards actually carried traffic (tenant 0 -> shard 0,
    // tenant 1 -> shard 1), with independent rings.
    let shards = r2.shard_host_stats();
    assert_eq!(shards.len(), 2);
    assert!(shards[0].doorbells > 0 && shards[1].doorbells > 0);
    assert_eq!(
        shards[0].doorbells + shards[1].doorbells,
        r2.host_stats().doorbells
    );
}

/// A deeper ring only moves completions *earlier*: the engine stops
/// idling out the interrupt round trip between chunks, so every job the
/// synchronous path finished completes no later (and the freed horizon
/// fits strictly more jobs).
#[test]
fn deeper_rings_dominate_the_synchronous_path() {
    let sync = run_with(|_| {});
    let deep = run_with(|cfg| cfg.hostq = HostQueueConfig::with_depth(8));
    let s = sync.runtime();
    let d = deep.runtime();
    assert!(
        d.records().len() > s.records().len(),
        "depth 8 should complete more jobs ({} vs {})",
        d.records().len(),
        s.records().len()
    );
    for a in s.records() {
        let b = d
            .records()
            .iter()
            .find(|r| r.id == a.id)
            .expect("every synchronous completion also completes at depth 8");
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(
            a.submit_ns.to_bits(),
            b.submit_ns.to_bits(),
            "same arrivals"
        );
        assert!(
            b.complete_ns <= a.complete_ns + 1e-9,
            "job {}: depth-8 completion {} ns later than synchronous {} ns",
            a.id,
            b.complete_ns,
            a.complete_ns
        );
    }
    let host = d.host_stats();
    assert!(
        host.max_in_flight > 1,
        "an 8-deep ring should actually pipeline (max in flight {})",
        host.max_in_flight
    );
    assert!(
        host.doorbells < host.descriptors,
        "a deep ring should batch some doorbells ({} rings for {} descriptors)",
        host.doorbells,
        host.descriptors
    );
}
