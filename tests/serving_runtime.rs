//! Full-system integration tests for the transfer-queue runtime.

use pim_mmu::XferKind;
use pim_runtime::{
    ArrivalProcess, Fcfs, JobSizer, Runtime, RuntimeConfig, ServingSystem, TenantSpec,
};
use pim_sim::{run_transfer, DesignPoint, SystemConfig, TransferSpec};

fn quick_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::table1(DesignPoint::BaseDHP);
    cfg.sample_ns = 50_000.0;
    cfg
}

/// A single-tenant FCFS runtime given one unchunked job at t = 0 is the
/// one-shot harness by another name: same descriptor, same submit-then-
/// run ordering, same driver accounting — the end-to-end latency must be
/// bit-identical to `run_transfer`'s elapsed time.
#[test]
fn single_tenant_fcfs_reproduces_the_transfer_harness_bit_identically() {
    let cfg = quick_cfg();
    let total: u64 = 1 << 20;
    let n_cores = 64;
    let spec = TransferSpec {
        n_cores,
        ..TransferSpec::simple(XferKind::DramToPim, total)
    };
    let oneshot = run_transfer(&cfg, &spec);

    let rt_cfg = RuntimeConfig {
        // One chunk: the whole job is a single pim_mmu_transfer, exactly
        // like the harness.
        chunk_bytes: u64::MAX,
        driver: cfg.driver,
        open_until_ns: 1.0,
        ..RuntimeConfig::default()
    };
    let tenant = TenantSpec {
        name: "solo".into(),
        kind: XferKind::DramToPim,
        arrival: ArrivalProcess::Trace(vec![0.0]),
        sizer: JobSizer::Fixed {
            per_core_bytes: total / n_cores as u64,
            n_cores,
        },
        priority: 0,
        weight: 1,
        class: 0,
    };
    let runtime = Runtime::new(rt_cfg, vec![tenant], Box::new(Fcfs));
    let mut serving = ServingSystem::new(cfg, runtime);
    assert!(serving.run_until_drained(2e9), "runtime never drained");

    let records = serving.runtime().records();
    assert_eq!(records.len(), 1);
    let rec = records[0];
    assert_eq!(rec.bytes, total);
    assert_eq!(rec.queue_delay_ns(), 0.0, "no contention, no queueing");
    assert_eq!(
        rec.e2e_ns().to_bits(),
        oneshot.elapsed_ns.to_bits(),
        "runtime e2e {} ns != harness {} ns",
        rec.e2e_ns(),
        oneshot.elapsed_ns
    );
}

/// The golden 2-tenant mix, built and run by the shared helper in
/// `pim_bench::goldens` (the same scenario the bit-for-bit anchors in
/// `tests/hostq_regression.rs` pin).
fn poisson_mix(seed: u64) -> ServingSystem {
    let (rt_cfg, tenants) = pim_bench::goldens::golden_scenario(seed);
    pim_bench::goldens::run_golden(rt_cfg, tenants)
}

/// Two runs of the same seeded open-loop trace are bit-identical: same
/// job records (ids, timestamps to the last bit), same fairness index —
/// and seed 7 is exactly the pinned golden capture.
#[test]
fn seeded_serving_runs_are_bit_identical() {
    let a = poisson_mix(7);
    let b = poisson_mix(7);
    assert!(
        !a.runtime().records().is_empty(),
        "the mix must complete jobs within the horizon"
    );
    assert_eq!(a.runtime().records(), b.runtime().records());
    assert_eq!(
        a.runtime().jain_by_bytes().to_bits(),
        b.runtime().jain_by_bytes().to_bits()
    );
    pim_bench::goldens::assert_matches_pr4_golden(a.runtime(), "seeded mix");
    // A different seed produces a different trace.
    let c = poisson_mix(8);
    assert_ne!(a.runtime().records(), c.runtime().records());
}
