//! Observability must be free when off and deterministic when on:
//!
//! * with telemetry disabled (the default), the PR 4 golden scenario
//!   replays **bit-for-bit** and the flight recorder stays empty — no
//!   extra clock domain, no allocation, no perturbation;
//! * with telemetry enabled, the same seeded scenario exports
//!   **byte-identical** trace and counter files across two runs, and
//!   the trace validates (parses, monotonic per-track timestamps,
//!   balanced slices).

use pim_bench::goldens::{golden_scenario, run_golden, GOLDEN_HORIZON_NS};
use pim_bench::json::parse;
use pim_bench::perfetto::{chrome_trace, snapshot_json, validate_chrome_trace};
use pim_runtime::TelemetryConfig;

#[test]
fn disabled_telemetry_replays_the_pr4_golden_bit_for_bit() {
    let (cfg, tenants) = golden_scenario(7);
    assert!(!cfg.telemetry.enabled, "telemetry must default to off");
    let serving = run_golden(cfg, tenants);
    pim_bench::goldens::assert_matches_pr4_golden(serving.runtime(), "telemetry-off");
    assert!(serving.runtime().recorder().is_empty());
    assert_eq!(serving.runtime().recorder().recorded(), 0);
    assert!(
        serving.sample_series().is_none(),
        "no sampler when disabled"
    );
}

#[test]
fn enabled_telemetry_does_not_move_the_golden_timeline() {
    let (mut cfg, tenants) = golden_scenario(7);
    cfg.telemetry = TelemetryConfig::on();
    let serving = run_golden(cfg, tenants);
    // The telemetry clock domain adds edges but no behavior: the
    // golden records must still match to the f64 bit.
    pim_bench::goldens::assert_matches_pr4_golden(serving.runtime(), "telemetry-on");
    assert!(!serving.runtime().recorder().is_empty());
    assert!(serving.sample_series().is_some());
}

fn export_once() -> (String, String) {
    let (mut cfg, tenants) = golden_scenario(7);
    cfg.telemetry = TelemetryConfig {
        sample_ns: 5_000.0,
        ..TelemetryConfig::on()
    };
    let shards = cfg.shards;
    let mut serving = run_golden(cfg, tenants);
    assert!(serving.run_until_drained(GOLDEN_HORIZON_NS * 100.0));
    serving.flush_spans();
    let rt = serving.runtime();
    let names: Vec<&str> = rt.tenant_stats().iter().map(|(n, _)| *n).collect();
    let trace = chrome_trace(rt.recorder(), &names, shards, serving.sample_series());
    let snap = snapshot_json(&serving.telemetry_snapshot());
    (trace.render(), snap.render())
}

#[test]
fn traced_exports_are_byte_identical_across_runs() {
    let (trace_a, counters_a) = export_once();
    let (trace_b, counters_b) = export_once();
    assert_eq!(trace_a, trace_b, "trace export drifted between seeded runs");
    assert_eq!(
        counters_a, counters_b,
        "counter dump drifted between seeded runs"
    );

    let doc = parse(&trace_a).expect("exported trace is well-formed JSON");
    let summary = validate_chrome_trace(&doc).expect("trace validates");
    assert!(summary.device_slices > 0, "device tracks present");
    assert!(summary.async_slices > 0, "tenant job tracks present");
    assert!(summary.counter_samples > 0, "sampled counters present");

    let counters = parse(&counters_a).expect("counter dump is well-formed JSON");
    let set = counters.get("counters").expect("counters object");
    for key in [
        "timing.events_fired",
        "host.doorbells",
        "ring.completed",
        "shard0.dce.lines_done",
        "tenant0.a.completed",
    ] {
        assert!(set.get(key).is_some(), "snapshot missing `{key}`");
    }
}
