//! Differential conformance: the event-driven scheduler must be a pure
//! performance optimization. Every scenario here is run twice — once
//! under [`TimingMode::CycleStepped`] (the reference driver: no domain
//! ever parks or defers, every edge ticks) and once under
//! [`TimingMode::EventDriven`] — and every observable output is
//! compared to the `f64` *bit*: one-shot [`TransferResult`]s across the
//! design-point ladder, and serving-runtime job records, tenant stats
//! and host-interface counters across randomized policy × placement ×
//! preemption × idle-gap scenarios.
//!
//! The sparse scenarios additionally assert `edges_skipped > 0` in the
//! event-driven run: equality is only evidence if the idle-skip
//! machinery actually engaged.

use pim_mmu::XferKind;
use pim_runtime::{
    policy_by_name, HostQueueConfig, Placement, Preemption, Runtime, RuntimeConfig, ServingSystem,
    TenantSpec,
};
use pim_sim::{
    run_memcpy, run_transfer, DesignPoint, SystemConfig, TimingMode, TransferResult, TransferSpec,
};

fn cfg(design: DesignPoint, mode: TimingMode) -> SystemConfig {
    let mut c = SystemConfig::table1(design);
    c.sample_ns = 20_000.0;
    c.timing = mode;
    c
}

fn assert_transfer_bits_eq(a: &TransferResult, b: &TransferResult, label: &str) {
    assert_eq!(a.bytes, b.bytes, "{label}: bytes");
    assert_eq!(
        a.elapsed_ns.to_bits(),
        b.elapsed_ns.to_bits(),
        "{label}: elapsed drifted ({} vs {} ns)",
        a.elapsed_ns,
        b.elapsed_ns
    );
    assert_eq!(
        a.pim_bus_utilization.to_bits(),
        b.pim_bus_utilization.to_bits(),
        "{label}: pim bus utilization"
    );
    assert_eq!(
        a.dram_bus_utilization.to_bits(),
        b.dram_bus_utilization.to_bits(),
        "{label}: dram bus utilization"
    );
    assert_eq!(
        a.pim_channel_windows, b.pim_channel_windows,
        "{label}: pim channel windows"
    );
    assert_eq!(
        a.dram_channel_windows, b.dram_channel_windows,
        "{label}: dram channel windows"
    );
}

#[test]
fn one_shot_transfers_are_bit_identical_across_the_design_ladder() {
    for design in [
        DesignPoint::Baseline,
        DesignPoint::BaseD,
        DesignPoint::BaseDH,
        DesignPoint::BaseDHP,
    ] {
        for (kind, bytes) in [
            (XferKind::DramToPim, 256 << 10),
            (XferKind::PimToDram, 128 << 10),
        ] {
            let spec = TransferSpec::simple(kind, bytes);
            let cs = run_transfer(&cfg(design, TimingMode::CycleStepped), &spec);
            let ed = run_transfer(&cfg(design, TimingMode::EventDriven), &spec);
            assert_transfer_bits_eq(&cs, &ed, &format!("{design:?} {kind:?} {bytes}B"));
        }
    }
}

#[test]
fn software_memcpy_is_bit_identical() {
    let cs = run_memcpy(
        &cfg(DesignPoint::Baseline, TimingMode::CycleStepped),
        1 << 20,
        2e9,
    );
    let ed = run_memcpy(
        &cfg(DesignPoint::Baseline, TimingMode::EventDriven),
        1 << 20,
        2e9,
    );
    assert_transfer_bits_eq(&cs, &ed, "memcpy 1MiB");
}

/// One randomized serving scenario: tenant mix, host-queue shape,
/// placement, preemption and policy all derived from `seed` via a
/// splitmix64 stream, with arrival gaps long enough that the host goes
/// fully quiescent between bursts (the idle windows event-driven mode
/// must skip without observable effect).
struct Scenario {
    rt_cfg: RuntimeConfig,
    tenants: Vec<TenantSpec>,
    policy: &'static str,
    label: String,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn scenario(seed: u64) -> Scenario {
    let mut s = seed;
    let policies = ["fcfs", "sjf", "prio", "drr"];
    let policy = policies[(splitmix(&mut s) % policies.len() as u64) as usize];
    let placement = if splitmix(&mut s).is_multiple_of(2) {
        Placement::HashPin
    } else {
        Placement::LeastLoaded
    };
    let preemption = match splitmix(&mut s) % 3 {
        0 => Preemption::Off,
        1 => Preemption::Quantum {
            device_cycles: 1600 + 800 * (splitmix(&mut s) % 4),
        },
        _ => Preemption::PriorityKick,
    };
    let shards = 1 + (splitmix(&mut s) % 2) as usize;
    let depth = 1 + (splitmix(&mut s) % 3) as usize;
    let coalesce_count = 1 + (splitmix(&mut s) % 2) as u32;
    // Sparse arrivals: mean inter-arrival far above a job's service
    // time, so the machine drains and parks between most jobs.
    let n_tenants = 2 + (splitmix(&mut s) % 2) as usize;
    let tenants: Vec<TenantSpec> = (0..n_tenants)
        .map(|i| {
            let mean_ns = 6_000.0 + 4_000.0 * (splitmix(&mut s) % 4) as f64;
            let per_core = 256 << (splitmix(&mut s) % 3);
            let mut t = TenantSpec::poisson(&format!("t{i}"), mean_ns, per_core, 64);
            t.priority = (splitmix(&mut s) % 3) as u32;
            t.weight = 1 + (splitmix(&mut s) % 3) as u32;
            t
        })
        .collect();
    let rt_cfg = RuntimeConfig {
        chunk_bytes: 16 << 10,
        open_until_ns: 30_000.0,
        seed: splitmix(&mut s),
        hostq: HostQueueConfig {
            depth,
            coalesce_count,
            coalesce_timeout_ns: 200.0 * (splitmix(&mut s) % 3) as f64,
            poll_period_ps: 312,
        },
        shards,
        placement,
        core_stride: 64,
        preemption,
        ..RuntimeConfig::default()
    };
    let label = format!(
        "seed {seed}: {policy}/{}/{} shards={shards} depth={depth}",
        placement.name(),
        preemption.name()
    );
    Scenario {
        rt_cfg,
        tenants,
        policy,
        label,
    }
}

fn run_serving(sc: &Scenario, mode: TimingMode) -> (ServingSystem, bool) {
    let runtime = Runtime::new(
        sc.rt_cfg,
        sc.tenants
            .iter()
            .map(|t| TenantSpec {
                name: t.name.clone(),
                kind: t.kind,
                arrival: t.arrival.clone(),
                sizer: t.sizer,
                priority: t.priority,
                weight: t.weight,
                class: t.class,
            })
            .collect(),
        policy_by_name(sc.policy, sc.rt_cfg.chunk_bytes).expect("known policy"),
    );
    let mut cfg = SystemConfig::table1(DesignPoint::BaseDHP);
    cfg.sample_ns = 20_000.0;
    cfg.timing = mode;
    let mut serving = ServingSystem::new(cfg, runtime);
    let drained = serving.run_until_drained(5e8);
    (serving, drained)
}

fn assert_serving_eq(a: &ServingSystem, b: &ServingSystem, label: &str) {
    let (ra, rb) = (a.runtime(), b.runtime());
    assert_eq!(
        ra.records().len(),
        rb.records().len(),
        "{label}: record count"
    );
    for (x, y) in ra.records().iter().zip(rb.records()) {
        assert_eq!(x.id, y.id, "{label}: job order");
        assert_eq!(x.tenant, y.tenant, "{label}: job {} tenant", x.id);
        assert_eq!(x.bytes, y.bytes, "{label}: job {} bytes", x.id);
        for (name, p, q) in [
            ("submit", x.submit_ns, y.submit_ns),
            ("dispatch", x.dispatch_ns, y.dispatch_ns),
            ("complete", x.complete_ns, y.complete_ns),
        ] {
            assert_eq!(
                p.to_bits(),
                q.to_bits(),
                "{label}: job {} {name} drifted ({p} vs {q} ns)",
                x.id
            );
        }
    }
    for ((na, sa), (nb, sb)) in ra.tenant_stats().iter().zip(rb.tenant_stats()) {
        assert_eq!(na, &nb, "{label}: tenant order");
        assert_eq!(sa.completed, sb.completed, "{label}: {na} completed");
        assert_eq!(
            sa.bytes_completed, sb.bytes_completed,
            "{label}: {na} bytes completed"
        );
        assert_eq!(
            sa.bytes_serviced, sb.bytes_serviced,
            "{label}: {na} bytes serviced"
        );
        assert_eq!(sa.preemptions, sb.preemptions, "{label}: {na} preemptions");
    }
    let (ha, hb) = (ra.host_stats(), rb.host_stats());
    assert_eq!(ha.doorbells, hb.doorbells, "{label}: doorbells");
    assert_eq!(ha.interrupts, hb.interrupts, "{label}: interrupts");
    assert_eq!(ha.max_in_flight, hb.max_in_flight, "{label}: max in flight");
    assert_eq!(
        ra.jain_by_bytes().to_bits(),
        rb.jain_by_bytes().to_bits(),
        "{label}: jain"
    );
    assert_eq!(
        ra.preemptions(),
        rb.preemptions(),
        "{label}: engine preemptions"
    );
}

#[test]
fn randomized_serving_scenarios_are_bit_identical_and_actually_skip() {
    let mut skipped_any = false;
    for seed in 0..8u64 {
        let sc = scenario(seed);
        let (cs, cs_drained) = run_serving(&sc, TimingMode::CycleStepped);
        let (ed, ed_drained) = run_serving(&sc, TimingMode::EventDriven);
        assert_eq!(cs_drained, ed_drained, "{}: drained", sc.label);
        assert!(cs_drained, "{}: reference run must drain", sc.label);
        assert_serving_eq(&cs, &ed, &sc.label);
        let stats = ed.system().timing_stats();
        let ref_stats = cs.system().timing_stats();
        assert_eq!(
            ref_stats.edges_skipped, 0,
            "{}: the cycle-stepped reference must not skip",
            sc.label
        );
        assert!(
            stats.events_fired <= ref_stats.events_fired,
            "{}: event-driven fired more events ({} vs {})",
            sc.label,
            stats.events_fired,
            ref_stats.events_fired
        );
        skipped_any |= stats.edges_skipped > 0;
    }
    assert!(
        skipped_any,
        "no scenario engaged idle-skip; the differential proves nothing"
    );
}
